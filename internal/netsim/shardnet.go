// Sharded execution of the network model: one logical process (LP) per
// leaf switch plus a core LP for the spine/upper levels, running over
// sim.Shards' conservative windows. The per-hop switch forwarding
// latency (Config.SwitchLatency) is the lookahead bound: every
// LP-boundary crossing — a message handed from a leaf into the core, a
// drop notification travelling back to the sender — takes at least one
// un-jittered switch latency of virtual time, so LPs can execute a full
// lookahead window without ever hearing from each other mid-window.
//
// The partition is fixed by the topology, never by the worker count:
// "shard count" in user-facing flags means worker threads. That is the
// determinism contract — output at 1 worker and at N workers is
// byte-identical because the LP decomposition, per-LP RNG streams and
// barrier merge order are all worker-independent.
//
// The sharded model is a sibling of the serial Network, not a
// byte-compatible replacement: jitter draws happen on the LP that owns
// each hop and boundary crossings quantise to the lookahead, so its
// transcripts are compared sharded-vs-sharded (any worker count),
// while the serial model keeps its own goldens.
package netsim

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ShardedNet runs one large cluster simulation across LPs.
type ShardedNet struct {
	cfg       cluster.Config
	topo      *cluster.Topology
	sh        *sim.Shards
	lps       []*netLP
	sched     *faults.Schedule
	rails     int
	lookahead sim.Duration

	// deliver receives every completed transfer, in the destination
	// LP's event context. The model calls it instead of per-message
	// callbacks so drivers keep their state sharded by LP.
	deliver func(srcNode, dstNode, payload int, st TransferStats)
}

// netLP is one logical process: a leaf switch with its attached nodes,
// or the core (every upper-level switch plus all inter-switch links).
type netLP struct {
	n  *ShardedNet
	id int
	e  *sim.Engine

	loss   *sim.RNG
	jitter *sim.RNG

	// Leaf LPs: local node resources, indexed (node-nodeBase)*rails+rail.
	nodeBase int
	nicTx    []*sim.Serializer
	nicRx    []*sim.Serializer
	memBus   []*sim.Serializer
	fabric   *sim.Serializer // this leaf's switch fabric

	// Core LP: upper-level fabrics (indexed switch-leaves) and every
	// inter-switch link (indexed by topology link id).
	coreFabrics []*sim.Serializer
	segments    []*sim.Serializer

	free     []*sxfer
	counters Counters

	mTransfers *metrics.Counter
	mIntra     *metrics.Counter
	mCross     *metrics.Counter
	mWireBytes *metrics.Counter
	mHops      *metrics.Counter
	mDropCong  *metrics.Counter
	mDropFault *metrics.Counter
	mRetries   *metrics.Counter
	mSegPeak   []*metrics.Gauge // core LP only, per link
}

// sxfer is the LP-local slice of a message's journey, pooled per LP.
// When a message crosses into another LP its parameters travel in the
// cross-post closure and a fresh sxfer is acquired on the other side —
// pooled state never migrates between engines.
type sxfer struct {
	lp               *netLP
	srcNode, dstNode int
	payload          int
	start            sim.Time
	try              int
	rail             int
	pos              int
	path             []int32 // shared precomputed topology path

	latency sim.Duration // intra-node delivery latency

	stepFn     func()
	deliverFn  func(start, end sim.Time)
	retryFn    func()
	memDoneFn  func(start, end sim.Time)
	memDeliver func()
}

// NewSharded builds the sharded network for a hierarchical cluster:
// topo.Leaves leaf LPs plus one core LP, seeded from seed, executed by
// the given worker count (<= 0 means GOMAXPROCS). The configuration
// must carry a topology, and its SwitchLatency must be positive — a
// zero-latency switch hop would be a zero-lookahead cross-shard link,
// which sim.NewShards rejects.
func NewSharded(seed uint64, cfg cluster.Config, workers int) (*ShardedNet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netsim: sharded execution needs a hierarchical topology (flat %q runs serial)", cfg.Name)
	}
	lookahead := sim.DurationFromSeconds(cfg.SwitchLatency)
	sh, err := sim.NewShards(seed, cfg.Topo.Leaves+1, lookahead, workers)
	if err != nil {
		return nil, err
	}
	n := &ShardedNet{
		cfg:       cfg,
		topo:      cfg.Topo,
		sh:        sh,
		rails:     cfg.Rails(),
		lookahead: lookahead,
	}
	leaves := n.topo.Leaves
	n.lps = make([]*netLP, leaves+1)
	for i := range n.lps {
		lp := &netLP{
			n:      n,
			id:     i,
			e:      sh.LP(i),
			loss:   sh.LP(i).RNG("netsim.loss"),
			jitter: sh.LP(i).RNG("netsim.jitter"),
		}
		reg := lp.e.Metrics()
		lp.mTransfers = reg.Counter("net", "transfers_total")
		lp.mIntra = reg.Counter("net", "intra_node_total")
		lp.mCross = reg.Counter("net", "cross_switch_total")
		lp.mWireBytes = reg.Counter("net", "wire_bytes_total")
		lp.mHops = reg.Counter("net", "store_forward_hops_total")
		lp.mDropCong = reg.Counter("net", "drops_congestion_total")
		lp.mDropFault = reg.Counter("net", "drops_fault_total")
		lp.mRetries = reg.Counter("net", "retries_total")
		n.lps[i] = lp
	}
	for leaf := 0; leaf < leaves; leaf++ {
		lp := n.lps[leaf]
		lp.nodeBase = leaf * n.topo.LeafPorts
		lp.fabric = sim.NewSerializer(lp.e, fmt.Sprintf("switch%d.fabric", leaf))
		hi := lp.nodeBase + n.topo.LeafPorts
		if hi > cfg.Nodes {
			hi = cfg.Nodes
		}
		for node := lp.nodeBase; node < hi; node++ {
			for r := 0; r < n.rails; r++ {
				suffix := ""
				if n.rails > 1 {
					suffix = ".rail" + strconv.Itoa(r)
				}
				lp.nicTx = append(lp.nicTx, sim.NewSerializer(lp.e, fmt.Sprintf("node%d%s.tx", node, suffix)))
				lp.nicRx = append(lp.nicRx, sim.NewSerializer(lp.e, fmt.Sprintf("node%d%s.rx", node, suffix)))
			}
			lp.memBus = append(lp.memBus, sim.NewSerializer(lp.e, fmt.Sprintf("node%d.mem", node)))
		}
	}
	core := n.lps[leaves]
	for sw := leaves; sw < n.topo.Switches; sw++ {
		core.coreFabrics = append(core.coreFabrics, sim.NewSerializer(core.e, fmt.Sprintf("switch%d.fabric", sw)))
	}
	coreReg := core.e.Metrics()
	for i, l := range n.topo.Links {
		core.segments = append(core.segments, sim.NewSerializer(core.e, fmt.Sprintf("link%d(sw%d-sw%d)", i, l.A, l.B)))
		core.mSegPeak = append(core.mSegPeak, coreReg.Gauge("net", "segment_backlog_ns_max",
			metrics.L("segment", strconv.Itoa(i))))
	}
	return n, nil
}

// Config returns the cluster configuration.
func (n *ShardedNet) Config() cluster.Config { return n.cfg }

// NumLPs returns leaf count + 1 (the core).
func (n *ShardedNet) NumLPs() int { return len(n.lps) }

// Workers returns the worker-thread count windows execute with.
func (n *ShardedNet) Workers() int { return n.sh.Workers() }

// Windows returns how many synchronisation windows the run executed.
func (n *ShardedNet) Windows() uint64 { return n.sh.Windows() }

// Lookahead returns the conservative lookahead (the switch latency).
func (n *ShardedNet) Lookahead() sim.Duration { return n.lookahead }

// OwnerLP returns the LP that owns a node's state. Driver state for the
// node (send queues, completion records) must live on this LP.
func (n *ShardedNet) OwnerLP(node int) int { return node / n.topo.LeafPorts }

// Engine returns LP i's engine, for drivers to schedule kick-off events
// and timers on.
func (n *ShardedNet) Engine(lp int) *sim.Engine { return n.sh.LP(lp) }

// SetDeliver installs the delivery handler. It is invoked on the
// destination node's LP, in event context, once per completed transfer.
func (n *ShardedNet) SetDeliver(fn func(srcNode, dstNode, payload int, st TransferStats)) {
	n.deliver = fn
}

// SetFaults installs a fault schedule, validated against the cluster
// shape like the serial Network.
func (n *ShardedNet) SetFaults(s *faults.Schedule) {
	if err := s.ValidateFor(n.cfg.Nodes, n.topo.NumSegments()); err != nil {
		panic(err)
	}
	n.sched = s
}

// Run executes the sharded simulation to completion and returns the
// makespan (the largest LP clock).
func (n *ShardedNet) Run() (sim.Time, error) { return n.sh.Run() }

// Counters aggregates the per-LP activity counters (sums; MaxStackWait
// is the max). Deterministic: each field is commutative across LPs.
func (n *ShardedNet) Counters() Counters {
	var total Counters
	for _, lp := range n.lps {
		c := lp.counters
		total.Transfers += c.Transfers
		total.IntraNode += c.IntraNode
		total.CrossSwitch += c.CrossSwitch
		total.Retries += c.Retries
		total.FaultDrops += c.FaultDrops
		total.WireBytes += c.WireBytes
		if c.MaxStackWait > total.MaxStackWait {
			total.MaxStackWait = c.MaxStackWait
		}
	}
	return total
}

// MetricsSnapshot merges every LP's registry into one deterministic
// snapshot (counters add, gauges max, histograms add), in LP order.
func (n *ShardedNet) MetricsSnapshot() metrics.Snapshot {
	agg := metrics.NewAggregate()
	for _, lp := range n.lps {
		agg.Merge(lp.e.Metrics().Snapshot())
	}
	return agg.Snapshot()
}

// Send starts a transfer of payload bytes between two nodes. It must be
// called in the source node's LP event context (schedule via
// Engine(OwnerLP(src))). Completion reaches the SetDeliver handler on
// the destination's LP.
func (n *ShardedNet) Send(srcNode, dstNode, payload int) {
	if srcNode < 0 || srcNode >= n.cfg.Nodes || dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("netsim: transfer %d->%d outside cluster of %d nodes",
			srcNode, dstNode, n.cfg.Nodes))
	}
	if payload < 0 {
		panic(fmt.Sprintf("netsim: negative payload %d", payload))
	}
	if n.deliver == nil {
		panic("netsim: ShardedNet.Send before SetDeliver")
	}
	lp := n.lps[n.OwnerLP(srcNode)]
	lp.counters.Transfers++
	lp.mTransfers.Inc()
	x := lp.acquire()
	x.srcNode, x.dstNode, x.payload = srcNode, dstNode, payload
	x.rail = 0
	if n.rails > 1 {
		x.rail = (srcNode + dstNode) % n.rails
	}
	x.start = lp.e.Now()
	x.try = 0
	if srcNode == dstNode {
		lp.counters.IntraNode++
		lp.mIntra.Inc()
		x.intraNode()
		return
	}
	wire := uint64(n.cfg.WireBytes(payload))
	lp.counters.WireBytes += wire
	lp.mWireBytes.Add(wire)
	x.path = n.topo.PathHops(n.OwnerLP(srcNode), n.OwnerLP(dstNode))
	x.attempt()
}

// acquire returns a pooled LP-local transfer state machine.
func (lp *netLP) acquire() *sxfer {
	if k := len(lp.free) - 1; k >= 0 {
		x := lp.free[k]
		lp.free[k] = nil
		lp.free = lp.free[:k]
		return x
	}
	x := &sxfer{lp: lp}
	x.stepFn = x.step
	x.deliverFn = x.deliverDone
	x.retryFn = x.reattempt
	x.memDoneFn = x.memDone
	x.memDeliver = x.memDeliverNow
	return x
}

func (lp *netLP) release(x *sxfer) {
	x.path = nil
	x.try = 0
	lp.free = append(lp.free, x)
}

// local maps a global node id to the LP's serializer index for a rail.
func (lp *netLP) local(node, rail int) int {
	return (node-lp.nodeBase)*lp.n.rails + rail
}

// intraNode mirrors the serial model's shared-memory path, entirely
// within the owner LP.
func (x *sxfer) intraNode() {
	lp := x.lp
	cfg := &lp.n.cfg
	service := sim.DurationFromSeconds(float64(x.payload) * 8 / cfg.MemRate)
	x.latency = lp.jitteredDur(cfg.MemLatency)
	lp.memBus[x.srcNode-lp.nodeBase].Enqueue(service, x.memDoneFn)
}

func (x *sxfer) memDone(_, _ sim.Time) { x.lp.e.Schedule(x.latency, x.memDeliver) }

func (x *sxfer) memDeliverNow() {
	lp := x.lp
	st := TransferStats{Sent: x.start, Delivered: lp.e.Now()}
	src, dst, payload := x.srcNode, x.dstNode, x.payload
	lp.release(x)
	lp.n.deliver(src, dst, payload, st)
}

// attempt runs one end-to-end try from the source LP, mirroring the
// serial model: outage check, rail serialisation, store-and-forward
// delay, then the hop walk.
//
//detlint:hotpath
func (x *sxfer) attempt() {
	lp := x.lp
	n := lp.n
	cfg := &n.cfg
	wire := cfg.WireBytes(x.payload)

	if n.sched.NICDown(x.srcNode, lp.e.Now()) || n.sched.NICDown(x.dstNode, lp.e.Now()) {
		lp.counters.FaultDrops++
		lp.mDropFault.Inc()
		x.retryHere()
		return
	}
	txRate := cfg.LinkRate * n.sched.LinkFactor(x.srcNode, lp.e.Now())
	txService := sim.DurationFromSeconds(float64(wire) * 8 / txRate)
	txEnd := lp.nicTx[lp.local(x.srcNode, x.rail)].Enqueue(txService, nil)
	txStart := txEnd.Add(-txService)
	sfDelay := sim.DurationFromSeconds(cfg.FrameTime(x.payload)) + lp.jitteredDur(cfg.SwitchLatency)
	x.pos = 0
	lp.e.At(txStart.Add(sfDelay), x.stepFn)
}

// step advances the hop walk. Hops owned by the current LP traverse
// locally; the first foreign hop hands the message off across the shard
// boundary at exactly one lookahead of latency (the un-jittered switch
// hop the conservative window is built on).
//
//detlint:hotpath
func (x *sxfer) step() {
	lp := x.lp
	n := lp.n
	if x.pos >= len(x.path) {
		x.arrive()
		return
	}
	h := x.path[x.pos]
	owner := n.hopOwner(h)
	if owner != lp.id {
		n.handoff(lp, owner, x)
		return
	}
	x.pos++
	if sw, ok := cluster.IsFabricHop(h); ok {
		if lp.traverseStage(lp.fabricFor(sw), -1, x.payload, true, x.stepFn) {
			x.failed()
		}
		return
	}
	if lp.traverseStage(lp.segments[h], int(h), x.payload, false, x.stepFn) {
		x.failed()
	}
}

// hopOwner maps an encoded hop to its LP: leaf fabrics to their leaf,
// everything else (upper fabrics, all links) to the core.
func (n *ShardedNet) hopOwner(h int32) int {
	if sw, ok := cluster.IsFabricHop(h); ok && sw < n.topo.Leaves {
		return sw
	}
	return n.topo.Leaves
}

// fabricFor resolves a fabric switch id to the serializer this LP owns.
func (lp *netLP) fabricFor(sw int) *sim.Serializer {
	if sw < lp.n.topo.Leaves {
		return lp.fabric
	}
	return lp.coreFabrics[sw-lp.n.topo.Leaves]
}

// handoff posts the message's continuation to the owning LP one
// lookahead ahead, releasing the local state machine. The closure
// carries the message by value — pooled state never crosses engines.
func (n *ShardedNet) handoff(from *netLP, owner int, x *sxfer) {
	src, dst, payload := x.srcNode, x.dstNode, x.payload
	start, try, pos := x.start, x.try, x.pos
	at := from.e.Now().Add(n.lookahead)
	from.release(x)
	to := n.lps[owner]
	n.sh.Post(from.id, owner, at, func() {
		y := to.acquire()
		y.srcNode, y.dstNode, y.payload = src, dst, payload
		y.start, y.try, y.pos = start, try, pos
		y.rail = 0
		if n.rails > 1 {
			y.rail = (src + dst) % n.rails
		}
		y.path = n.topo.PathHops(n.OwnerLP(src), n.OwnerLP(dst))
		y.step()
	})
}

// traverseStage is the per-LP twin of the serial Network's stage walk:
// same service model, same drop rule, drawing jitter from this LP's
// streams only.
//
//detlint:hotpath
func (lp *netLP) traverseStage(s *sim.Serializer, seg, payload int, perFrame bool, arrive func()) (droppedNow bool) {
	n := lp.n
	cfg := &n.cfg
	lp.mHops.Inc()
	wait := s.Backlog()
	if wait > lp.counters.MaxStackWait {
		lp.counters.MaxStackWait = wait
	}
	if seg >= 0 {
		lp.mSegPeak[seg].SetMax(int64(wait))
	}
	if p := cfg.DropProb(wait.Seconds(), cfg.StackBufferDelay()); p > 0 && lp.loss.Bool(p) {
		lp.mDropCong.Inc()
		return true
	}
	rate := cfg.StackRate
	if seg >= 0 {
		if lr := n.topo.Links[seg].Rate; lr > 0 {
			rate = lr
		}
		rate *= n.sched.StackFactor(seg, lp.e.Now())
	}
	serviceSec := float64(cfg.WireBytes(payload)) * 8 / rate
	frame := cfg.WireBytes(payload)
	if max := cfg.MTU + cfg.FrameOverhead; frame > max {
		frame = max
	}
	oneFrame := float64(frame) * 8 / rate
	if perFrame {
		serviceSec = cfg.FabricService(payload)
		oneFrame += cfg.FabricPerFrame
	}
	if cfg.FabricJitter > 0 {
		sigma2 := math.Log1p(cfg.FabricJitter * cfg.FabricJitter)
		serviceSec *= lp.jitter.LogNormal(-sigma2/2, math.Sqrt(sigma2))
	}
	service := sim.DurationFromSeconds(serviceSec)
	end := s.Enqueue(service, nil)
	handoff := end.Add(-service).Add(sim.DurationFromSeconds(oneFrame)).Add(lp.jitteredDur(cfg.SwitchLatency))
	lp.e.At(handoff, arrive)
	return false
}

// arrive is the destination port, on the destination's LP: congestion
// and fault drop checks, then receive-side serialisation and delivery.
//
//detlint:hotpath
func (x *sxfer) arrive() {
	lp := x.lp
	n := lp.n
	cfg := &n.cfg
	if p := cfg.DropProb(lp.nicRx[lp.local(x.dstNode, x.rail)].Backlog().Seconds(), cfg.NICBufferDelay()); p > 0 && lp.loss.Bool(p) {
		lp.mDropCong.Inc()
		x.failed()
		return
	}
	if boost := n.sched.DropBoost(x.dstNode, lp.e.Now()); boost > 0 && lp.loss.Bool(boost) {
		lp.counters.FaultDrops++
		lp.mDropFault.Inc()
		x.failed()
		return
	}
	lf := n.sched.LinkFactor(x.dstNode, lp.e.Now())
	if src := n.sched.LinkFactor(x.srcNode, lp.e.Now()); src < lf {
		lf = src
	}
	wire := cfg.WireBytes(x.payload)
	rxService := sim.DurationFromSeconds(float64(wire) * 8 / (cfg.LinkRate * lf))
	lp.nicRx[lp.local(x.dstNode, x.rail)].Enqueue(rxService, x.deliverFn)
}

//detlint:hotpath
func (x *sxfer) deliverDone(_, end sim.Time) {
	lp := x.lp
	cross := lp.n.OwnerLP(x.srcNode) != lp.n.OwnerLP(x.dstNode)
	if cross {
		lp.counters.CrossSwitch++
		lp.mCross.Inc()
	}
	st := TransferStats{Sent: x.start, Delivered: end, Retries: x.try, CrossSwitch: cross}
	src, dst, payload := x.srcNode, x.dstNode, x.payload
	lp.release(x)
	lp.n.deliver(src, dst, payload, st)
}

// failed handles a drop: if the current LP owns the sender, the
// retransmission timer runs right here; otherwise the loss notification
// travels back across the shard boundary (one lookahead, like any other
// signal) and the source LP schedules the timeout.
func (x *sxfer) failed() {
	lp := x.lp
	n := lp.n
	srcLP := n.OwnerLP(x.srcNode)
	if srcLP == lp.id {
		x.retryHere()
		return
	}
	src, dst, payload := x.srcNode, x.dstNode, x.payload
	start, try := x.start, x.try
	at := lp.e.Now().Add(n.lookahead)
	lp.release(x)
	to := n.lps[srcLP]
	n.sh.Post(lp.id, srcLP, at, func() {
		y := to.acquire()
		y.srcNode, y.dstNode, y.payload = src, dst, payload
		y.start, y.try = start, try
		y.rail = 0
		if n.rails > 1 {
			y.rail = (src + dst) % n.rails
		}
		y.path = n.topo.PathHops(n.OwnerLP(src), n.OwnerLP(dst))
		y.retryHere()
	})
}

// retryHere schedules the TCP-style retransmission on the source LP,
// with the serial model's backoff envelope and ±10% jitter.
//
//detlint:hotpath
func (x *sxfer) retryHere() {
	lp := x.lp
	cfg := &lp.n.cfg
	lp.counters.Retries++
	lp.mRetries.Inc()
	exp := x.try
	if exp > 5 {
		exp = 5
	}
	rto := cfg.RTO
	for i := 0; i < exp; i++ {
		rto *= cfg.RTOBackoff
	}
	rto *= 0.9 + 0.2*lp.jitter.Float64()
	lp.e.Schedule(sim.DurationFromSeconds(rto), x.retryFn)
}

//detlint:hotpath
func (x *sxfer) reattempt() {
	x.try++
	x.attempt()
}

// jitteredDur is the per-LP twin of Network.jittered.
func (lp *netLP) jitteredDur(nominal float64) sim.Duration {
	f := 1 + lp.n.cfg.JitterSigma*lp.jitter.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return sim.DurationFromSeconds(nominal * f)
}
