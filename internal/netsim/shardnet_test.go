package netsim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sim"
)

// shardedTopoConfig builds a hierarchical cluster from a topology spec.
func shardedTopoConfig(t *testing.T, spec string) cluster.Config {
	t.Helper()
	topo, nodes, err := cluster.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(1, cluster.Perseus(), 1); err == nil {
		t.Error("flat config accepted for sharded execution")
	} else if !strings.Contains(err.Error(), "topology") {
		t.Errorf("flat rejection should mention the missing topology: %v", err)
	}

	cfg := shardedTopoConfig(t, "fattree:32x8x2")
	cfg.SwitchLatency = 0
	if _, err := NewSharded(1, cfg, 1); err == nil {
		t.Error("zero switch latency accepted: a zero-lookahead shard boundary")
	} else if !strings.Contains(err.Error(), "zero-latency") {
		t.Errorf("zero-latency rejection should explain itself: %v", err)
	}

	bad := shardedTopoConfig(t, "fattree:32x8x2")
	bad.Nodes = 0
	if _, err := NewSharded(1, bad, 1); err == nil {
		t.Error("invalid config accepted")
	}

	net, err := NewSharded(1, shardedTopoConfig(t, "fattree:32x8x2"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLPs() != 5 { // 4 leaves + core
		t.Errorf("NumLPs = %d, want 5", net.NumLPs())
	}
	if net.Workers() != 2 {
		t.Errorf("Workers = %d, want 2", net.Workers())
	}
	if net.Lookahead() != sim.DurationFromSeconds(net.Config().SwitchLatency) {
		t.Error("lookahead should equal the switch latency")
	}
	defer func() {
		if recover() == nil {
			t.Error("Send before SetDeliver did not panic")
		}
	}()
	net.Send(0, 1, 64)
}

// shardedRun drives deterministic traffic over a sharded network and
// serialises everything observable: per-LP delivery logs, aggregated
// counters, the merged metrics snapshot and the makespan.
func shardedRun(t *testing.T, seed uint64, workers int, spec string, withFaults bool) string {
	t.Helper()
	cfg := shardedTopoConfig(t, spec)
	net, err := NewSharded(seed, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	if withFaults {
		span := sim.TimeFromSeconds(0.05)
		net.SetFaults(&faults.Schedule{Name: "test", Rules: []faults.Rule{
			// A guaranteed drop window on node 0's deliveries: every
			// arrival during the window fails and the retry notification
			// crosses back to the sender's LP.
			{Kind: faults.DropBoost, Target: 0, Severity: 1, Start: 0, End: span},
			{Kind: faults.NICOutage, Target: cfg.Nodes - 1, Start: 0, End: span / 2},
			{Kind: faults.BackplaneDegrade, Target: 0, Severity: 0.25, Start: 0, End: span},
		}})
	}
	// logs[lp] is only ever appended to by the LP's own worker (delivery
	// runs on the destination's LP), so the transcript needs no locking
	// even under -race.
	logs := make([][]string, net.NumLPs())
	net.SetDeliver(func(src, dst, payload int, st TransferStats) {
		lp := net.OwnerLP(dst)
		logs[lp] = append(logs[lp], fmt.Sprintf(
			"%d->%d bytes=%d sent=%v delivered=%v retries=%d cross=%v",
			src, dst, payload, st.Sent, st.Delivered, st.Retries, st.CrossSwitch))
	})
	// Traffic: every node sends cross-leaf to the same port of the next
	// leaf, one same-leaf neighbour message, and one self-message, at
	// staggered start times scheduled on the sender's LP.
	for node := 0; node < cfg.Nodes; node++ {
		src := node
		lp := net.OwnerLP(src)
		at := sim.Time(src+1) * sim.Time(sim.Microsecond)
		cross := (src + cfg.Topo.LeafPorts) % cfg.Nodes
		local := (src/cfg.Topo.LeafPorts)*cfg.Topo.LeafPorts + (src+1)%cfg.Topo.LeafPorts
		if local >= cfg.Nodes {
			local = src
		}
		localDst := local
		net.Engine(lp).At(at, func() {
			net.Send(src, cross, 4096)
			net.Send(src, localDst, 512)
			net.Send(src, src, 256)
		})
	}
	end, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "end=%v windows=%d workers_independent=true\n", end, net.Windows())
	for i, lines := range logs {
		fmt.Fprintf(&b, "lp%d (%d deliveries)\n", i, len(lines))
		for _, l := range lines {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	fmt.Fprintf(&b, "counters=%+v\n", net.Counters())
	if err := net.MetricsSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestShardedByteIdenticalAcrossWorkers(t *testing.T) {
	// The PR's core acceptance: a sharded run's full observable output —
	// transcript, counters, merged metrics — is byte-identical at worker
	// counts 1, 2 and 4, healthy and faulted, single- and multi-rail.
	for _, tc := range []struct {
		spec       string
		withFaults bool
	}{
		{"fattree:32x8x2", false},
		{"fattree:32x8x2", true},
		{"fattree:32x8x2+2rail", false},
		{"dragonfly:4x2x4", false},
	} {
		serial := shardedRun(t, 11, 1, tc.spec, tc.withFaults)
		if !strings.Contains(serial, "deliveries") || strings.Contains(serial, "(0 deliveries)\nlp0") {
			t.Fatalf("%s: no transcript produced", tc.spec)
		}
		for _, workers := range []int{2, 4} {
			if got := shardedRun(t, 11, workers, tc.spec, tc.withFaults); got != serial {
				t.Errorf("%s faults=%v: workers=%d output differs from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
					tc.spec, tc.withFaults, workers, serial, workers, got)
			}
		}
		if other := shardedRun(t, 12, 1, tc.spec, tc.withFaults); other == serial {
			t.Errorf("%s: different seeds produced identical output", tc.spec)
		}
	}
}

func TestShardedDeliverySemantics(t *testing.T) {
	cfg := shardedTopoConfig(t, "fattree:32x8x2")
	net, err := NewSharded(3, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	type delivery struct {
		src, dst int
		st       TransferStats
	}
	// Deliveries land on their destination's LP, which may run on any
	// worker: the shared slice needs a lock (classification below is
	// order-independent).
	var mu sync.Mutex
	var got []delivery
	net.SetDeliver(func(src, dst, payload int, st TransferStats) {
		mu.Lock()
		got = append(got, delivery{src, dst, st})
		mu.Unlock()
	})
	net.Engine(0).At(sim.Time(sim.Microsecond), func() {
		net.Send(0, 0, 1024)           // intra-node
		net.Send(0, 1, 1024)           // same leaf
		net.Send(0, cfg.Nodes-1, 1024) // cross leaf (last leaf)
	})
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	var intra, sameLeaf, cross int
	for _, d := range got {
		switch {
		case d.src == d.dst:
			intra++
			if d.st.CrossSwitch {
				t.Error("intra-node delivery flagged cross-switch")
			}
		case net.OwnerLP(d.src) == net.OwnerLP(d.dst):
			sameLeaf++
			if d.st.CrossSwitch {
				t.Error("same-leaf delivery flagged cross-switch")
			}
		default:
			cross++
			if !d.st.CrossSwitch {
				t.Error("cross-leaf delivery not flagged cross-switch")
			}
		}
		if d.st.Delivered <= d.st.Sent {
			t.Errorf("%d->%d delivered %v not after sent %v", d.src, d.dst, d.st.Delivered, d.st.Sent)
		}
	}
	if intra != 1 || sameLeaf != 1 || cross != 1 {
		t.Errorf("deliveries: intra=%d sameLeaf=%d cross=%d, want 1 each", intra, sameLeaf, cross)
	}
	c := net.Counters()
	if c.Transfers != 3 || c.IntraNode != 1 || c.CrossSwitch != 1 {
		t.Errorf("counters = %+v, want Transfers=3 IntraNode=1 CrossSwitch=1", c)
	}
	if net.Windows() == 0 {
		t.Error("run executed no windows")
	}
	snap := net.MetricsSnapshot()
	if v, ok := snap.Counter("net", "transfers_total"); !ok || v != 3 {
		t.Errorf("merged transfers_total = %d (ok=%v), want 3", v, ok)
	}
	if v, ok := snap.Counter("net", "cross_switch_total"); !ok || v != 1 {
		t.Errorf("merged cross_switch_total = %d (ok=%v), want 1", v, ok)
	}
}

func TestShardedFaultRetries(t *testing.T) {
	// A total drop window on the destination forces cross-LP loss
	// notifications and RTO retries; once the window lifts the message
	// must still arrive, with Retries > 0.
	cfg := shardedTopoConfig(t, "fattree:32x8x2")
	net, err := NewSharded(5, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.TimeFromSeconds(0.2)
	net.SetFaults(&faults.Schedule{Rules: []faults.Rule{
		{Kind: faults.DropBoost, Target: 9, Severity: 1, Start: 0, End: window},
	}})
	var st TransferStats
	delivered := 0
	net.SetDeliver(func(_, dst, _ int, s TransferStats) {
		if dst != 9 {
			t.Errorf("unexpected delivery to %d", dst)
		}
		delivered++
		st = s
	})
	net.Engine(0).At(sim.Time(sim.Microsecond), func() { net.Send(0, 9, 2048) })
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d messages, want 1", delivered)
	}
	if st.Retries == 0 {
		t.Error("transfer inside a total drop window reported zero retries")
	}
	if st.Delivered < window {
		t.Errorf("delivered at %v, before the drop window lifted at %v", st.Delivered, window)
	}
	c := net.Counters()
	if c.FaultDrops == 0 || c.Retries == 0 || c.FaultDrops > c.Retries {
		t.Errorf("counters = %+v, want 0 < FaultDrops <= Retries", c)
	}

	// A schedule whose rule binds nothing on this machine must panic.
	defer func() {
		if recover() == nil {
			t.Error("out-of-range fault rule accepted")
		}
	}()
	net.SetFaults(&faults.Schedule{Rules: []faults.Rule{
		{Kind: faults.BackplaneDegrade, Target: 10_000, Severity: 0.5, Start: 0, End: window},
	}})
}
