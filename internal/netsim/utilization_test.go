package netsim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestUtilizationAccounting(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	// One cross-switch transfer: exactly its wire bits cross one segment.
	n.Transfer(0, 24, 16384, nil)
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	u := n.UtilizationSince(0)
	wantBits := float64(cfg.WireBytes(16384)) * 8
	if diff := (u.DeliveredStackBits - wantBits) / wantBits; diff < -0.01 || diff > 0.01 {
		t.Errorf("stack bits = %v, want %v", u.DeliveredStackBits, wantBits)
	}
	if u.BusiestNICTx <= 0 || u.BusiestNICTx > 1 {
		t.Errorf("NIC tx utilisation = %v", u.BusiestNICTx)
	}
	if u.BusiestSegment <= 0 {
		t.Error("segment should show activity")
	}
}

// TestSaturationOnsetDeliversBackplaneCapacity reproduces the paper's §3
// arithmetic: degradation begins when the *delivered* inter-switch load
// reaches the stacking backplane's 2.1 Gbit/s. Offer just about that
// much across one segment and the segment must run near-saturated while
// still delivering (the cliff with drops and retransmission collapse
// lies beyond, exercised by TestSaturationCausesRetries).
func TestSaturationOnsetDeliversBackplaneCapacity(t *testing.T) {
	cfg := cluster.Perseus()
	e := sim.NewEngine(2)
	n := New(e, cfg)
	// 22 nodes on switch 0 each stream 10 × 64 KB to the node one
	// switch away: each NIC offers ~95 Mbit/s of wire load, 22 × 95
	// ≈ 2.09 Gbit/s through segment 0 — right at its capacity.
	const senders, per = 22, 10
	for src := 0; src < senders; src++ {
		for k := 0; k < per; k++ {
			n.Transfer(src, 24+src, 65536, nil)
		}
	}
	// Measure mid-run, while the offered load is still arriving. In
	// this model the ingress switch's 2.1 Gbit/s fabric (bits plus
	// per-frame forwarding) saturates first; the stacking segment
	// behind it carries whatever the fabric admits.
	if _, err := e.Run(sim.TimeFromSeconds(0.04)); err != nil {
		t.Fatal(err)
	}
	u := n.UtilizationSince(0)
	if u.BusiestFabric < 0.80 {
		t.Errorf("busiest fabric only %.0f%% utilised at the saturation onset", u.BusiestFabric*100)
	}
	if u.BusiestSegment < 0.30 {
		t.Errorf("segment only %.0f%% utilised; traffic not flowing", u.BusiestSegment*100)
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	// At the onset the backplane still delivers everything it accepted:
	// total carried bits ≈ senders × per × wire bits (retries add more).
	want := float64(senders*per*cfg.WireBytes(65536)) * 8
	if got := n.UtilizationSince(0).DeliveredStackBits; got < want*0.99 {
		t.Errorf("backplane carried %.3g bits, want at least %.3g", got, want)
	}
}

func TestUtilizationEmptyWindow(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	if u := n.UtilizationSince(0); u != (Utilization{}) {
		t.Errorf("zero-elapsed utilisation should be empty, got %+v", u)
	}
}
