package netsim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sim"
)

// outage returns a schedule taking node's NIC down for [0, secs).
func outage(node int, secs float64) *faults.Schedule {
	return &faults.Schedule{Name: "test-outage", Rules: []faults.Rule{{
		Kind: faults.NICOutage, Start: 0, End: sim.TimeFromSeconds(secs), Target: node,
	}}}
}

// TestRetryBackoffEnvelope is the forced-saturation test for the
// retransmission path: a long NIC outage makes every attempt fail
// deterministically (no RNG in the outage check), driving retry through
// the capped exponential backoff. Each observed RTO must sit within the
// ±10% jitter band around RTO*RTOBackoff^min(try,5), the growth must
// cap, and the counters must reconcile with the one delivered transfer.
func TestRetryBackoffEnvelope(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	n.SetFaults(outage(1, 20)) // long enough to reach the backoff cap (try >= 5)

	type obs struct {
		try int
		rto float64
	}
	var seen []obs
	n.SetRetryObserver(func(src, dst, try int, rto float64) {
		if src != 0 || dst != 1 {
			t.Errorf("retry for %d->%d, want 0->1", src, dst)
		}
		seen = append(seen, obs{try, rto})
	})

	delivered := 0
	var stats TransferStats
	n.Transfer(0, 1, 1024, func(s TransferStats) { delivered++; stats = s })
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}

	if delivered != 1 {
		t.Fatalf("delivered %d transfers, want 1", delivered)
	}
	if len(seen) < 6 {
		t.Fatalf("only %d retries — outage too short to exercise the backoff cap", len(seen))
	}
	maxNominal := 0.0
	for i, o := range seen {
		if o.try != i {
			t.Errorf("retry %d reports try %d — attempts must fail in order", i, o.try)
		}
		exp := o.try
		if exp > 5 {
			exp = 5
		}
		nominal := cfg.RTO * math.Pow(cfg.RTOBackoff, float64(exp))
		if nominal > maxNominal {
			maxNominal = nominal
		}
		if r := o.rto / nominal; r < 0.9-1e-12 || r > 1.1+1e-12 {
			t.Errorf("retry %d: rto %.4fs is %.3f× nominal %.4fs, want within ±10%%", i, o.rto, r, nominal)
		}
	}
	// Growth is bounded: the cap pins the nominal RTO at backoff^5.
	if want := cfg.RTO * math.Pow(cfg.RTOBackoff, 5); maxNominal != want {
		t.Errorf("max nominal RTO %.4fs, want capped %.4fs", maxNominal, want)
	}
	// Every drop here is fault-attributed, every retry follows one drop,
	// and the transfer still completed after the window.
	c := n.Stats()
	if c.Retries != uint64(len(seen)) {
		t.Errorf("Counters.Retries = %d, observer saw %d", c.Retries, len(seen))
	}
	if c.FaultDrops != c.Retries {
		t.Errorf("FaultDrops = %d, want all %d drops fault-attributed", c.FaultDrops, c.Retries)
	}
	if stats.Retries != len(seen) {
		t.Errorf("TransferStats.Retries = %d, want %d", stats.Retries, len(seen))
	}
	if got := stats.Delivered.Seconds(); got < 20 {
		t.Errorf("delivered at %.2fs, inside the 20s outage window", got)
	}
}

func TestDropBoostForcesFaultDrops(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	// Certain drop at the destination for the first 0.3s: the congestion
	// check never fires on an idle network, so every drop in the window
	// is fault-attributed, and the transfer completes after it closes.
	n.SetFaults(&faults.Schedule{Name: "lossy", Rules: []faults.Rule{{
		Kind: faults.DropBoost, Start: 0, End: sim.TimeFromSeconds(0.3),
		Target: 1, Severity: 1,
	}}})
	delivered := 0
	n.Transfer(0, 1, 1024, func(TransferStats) { delivered++ })
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	c := n.Stats()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if c.FaultDrops == 0 {
		t.Error("certain DropBoost produced no fault drops")
	}
	if c.FaultDrops > c.Retries {
		t.Errorf("FaultDrops %d > Retries %d", c.FaultDrops, c.Retries)
	}
}

func TestLinkDegradeStretchesTransfer(t *testing.T) {
	cfg := quietPerseus()
	run := func(sched *faults.Schedule) float64 {
		e := sim.NewEngine(1)
		n := New(e, cfg)
		if sched != nil {
			n.SetFaults(sched)
		}
		var ts TransferStats
		n.Transfer(0, 1, 131072, func(s TransferStats) { ts = s })
		if _, err := e.Run(sim.Forever); err != nil {
			t.Fatal(err)
		}
		return ts.Delivered.Sub(ts.Sent).Seconds()
	}
	healthy := run(nil)
	degraded := run(&faults.Schedule{Name: "slow-link", Rules: []faults.Rule{{
		Kind: faults.LinkDegrade, Start: 0, End: sim.TimeFromSeconds(60),
		Target: 0, Severity: 0.5,
	}}})
	// Halving the source link rate must at least substantially stretch a
	// 128 KB transfer (serialisation dominates at this size).
	if degraded < healthy*1.5 {
		t.Errorf("degraded %.4fs vs healthy %.4fs: LinkDegrade had no effect", degraded, healthy)
	}
}

func TestBackplaneDegradeSlowsCrossSwitch(t *testing.T) {
	cfg := quietPerseus()
	src, dst := 0, cfg.PortsPerSwitch // adjacent switches: uses segment 0
	run := func(sched *faults.Schedule) float64 {
		e := sim.NewEngine(1)
		n := New(e, cfg)
		if sched != nil {
			n.SetFaults(sched)
		}
		var ts TransferStats
		n.Transfer(src, dst, 131072, func(s TransferStats) { ts = s })
		if _, err := e.Run(sim.Forever); err != nil {
			t.Fatal(err)
		}
		if !ts.CrossSwitch {
			t.Fatal("expected a cross-switch path")
		}
		return ts.Delivered.Sub(ts.Sent).Seconds()
	}
	healthy := run(nil)
	degraded := run(&faults.Schedule{Name: "bad-stack", Rules: []faults.Rule{{
		Kind: faults.BackplaneDegrade, Start: 0, End: sim.TimeFromSeconds(60),
		Target: 0, Severity: 0.05,
	}}})
	if degraded <= healthy {
		t.Errorf("degraded %.6fs <= healthy %.6fs: BackplaneDegrade had no effect", degraded, healthy)
	}
}

// TestEmptyScheduleBitIdentical guards the determinism contract: an
// installed-but-empty schedule must not change a single event, because
// it draws no randomness and perturbs no service time.
func TestEmptyScheduleBitIdentical(t *testing.T) {
	run := func(install bool) []sim.Time {
		e := sim.NewEngine(99)
		n := New(e, cluster.Perseus()) // full noise: any extra RNG draw shows up
		if install {
			n.SetFaults(&faults.Schedule{Name: "empty"})
		}
		var times []sim.Time
		for i := 0; i < 40; i++ {
			src, dst := i%8, (i+3)%8+cluster.Perseus().PortsPerSwitch
			n.Transfer(src, dst, 1024*(i%5+1), func(s TransferStats) {
				times = append(times, s.Delivered)
			})
		}
		if _, err := e.Run(sim.Forever); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v — empty schedule changed the run", i, a[i], b[i])
		}
	}
}
