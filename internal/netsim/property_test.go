package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestTransferConservationProperty: every transfer is delivered exactly
// once with Delivered > Sent, regardless of traffic mix — including
// under saturation with retries.
func TestTransferConservationProperty(t *testing.T) {
	cfg := cluster.Perseus()
	f := func(seed uint64, countRaw, sizeRaw uint16) bool {
		count := 1 + int(countRaw%200)
		e := sim.NewEngine(seed)
		n := New(e, cfg)
		r := sim.NewRNG(seed)
		delivered := 0
		bad := false
		for i := 0; i < count; i++ {
			src := r.Intn(cfg.Nodes)
			dst := r.Intn(cfg.Nodes)
			size := r.Intn(1 + int(sizeRaw)*4)
			n.Transfer(src, dst, size, func(ts TransferStats) {
				delivered++
				if ts.Delivered <= ts.Sent {
					// Even a zero-byte intra-node transfer pays latency;
					// equality would be a pipeline bug.
					bad = true
				}
			})
		}
		if _, err := e.Run(sim.Forever); err != nil {
			return false
		}
		return delivered == count && !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSerializerNeverOverlapsProperty: arbitrary interleavings of
// enqueues never produce overlapping service intervals.
func TestSerializerNeverOverlapsProperty(t *testing.T) {
	f := func(seed uint64, servicesRaw [8]uint16) bool {
		e := sim.NewEngine(seed)
		s := sim.NewSerializer(e, "x")
		type iv struct{ start, end sim.Time }
		var ivs []iv
		for i, raw := range servicesRaw {
			delay := sim.Duration(i) * 100 * sim.Microsecond
			service := sim.Duration(raw) * sim.Microsecond
			e.Schedule(delay, func() {
				s.Enqueue(service, func(start, end sim.Time) {
					ivs = append(ivs, iv{start, end})
				})
			})
		}
		if _, err := e.Run(sim.Forever); err != nil {
			return false
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return false
			}
		}
		return len(ivs) == len(servicesRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
