// Package netsim is the stochastic discrete-event model of a cluster's
// communication fabric: per-node NICs serialising frames onto full-duplex
// Fast Ethernet links, switches forwarding store-and-forward, a shared
// inter-switch stacking backplane with finite capacity, and TCP-style
// loss plus retransmission timeouts when buffers overflow.
//
// The model is flow-level — one event pipeline per message, not per
// Ethernet frame — which keeps simulations fast while reproducing the
// phenomena the paper analyses: queueing under contention, the backplane
// saturation cliff, and retransmission-timeout outliers in the tails of
// the latency distributions.
//
// netsim moves opaque byte counts between nodes. The MPI protocol
// (eager/rendezvous, matching, collectives) lives in internal/mpi.
package netsim

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TransferStats describes one completed message transfer.
type TransferStats struct {
	Sent        sim.Time // when the transfer was handed to the NIC
	Delivered   sim.Time // when the last byte reached the destination host
	Retries     int      // retransmission timeouts suffered
	CrossSwitch bool     // whether the path traversed the stacking backplane
}

// Counters aggregates network activity for experiments and tests.
type Counters struct {
	Transfers   uint64
	IntraNode   uint64
	CrossSwitch uint64
	// Retries counts retransmission timeouts; every dropped attempt
	// triggers exactly one, so it is also the total drop count.
	Retries uint64
	// FaultDrops counts the subset of drops attributed to an active
	// fault schedule (NIC outage windows, injected drop probability)
	// rather than to congestion. FaultDrops <= Retries always.
	FaultDrops   uint64
	WireBytes    uint64
	MaxStackWait sim.Duration // worst backlog observed at the backplane
}

// Network simulates the communication fabric of one cluster.
type Network struct {
	cfg cluster.Config
	e   *sim.Engine

	// rails is how many parallel NIC rails each node drives (1 on flat
	// clusters). nicTx/nicRx are indexed node*rails+rail; a transfer
	// rides rail (src+dst) mod rails, a deterministic spread that keeps
	// both directions of a pair on one rail.
	rails  int
	nicTx  []*sim.Serializer // per-node, per-rail NIC transmit engines
	nicRx  []*sim.Serializer // per-node, per-rail NIC receive engines
	memBus []*sim.Serializer // per-node shared-memory copy engines

	// fabrics model each switch's internal switching capacity. The Intel
	// 510T's fabric ran at 2.1 Gbit/s — less than half of what 24
	// full-duplex ports can offer — so a switch full of communicating
	// nodes congests internally even before the stacking backplane is
	// involved. Under a hierarchical topology there is one fabric per
	// switch of the tree, spines and routers included.
	fabrics []*sim.Serializer

	// segments model the inter-switch channels. On the flat cluster they
	// are the stacking backplane daisy-chain the Intel 510T matrix cards
	// form: segment i joins switch i and i+1, and a message spanning
	// several switches consumes capacity on every segment along the way
	// — what makes wide spans (the paper's 64×1 across three switches)
	// congest first. Under a hierarchical topology, segment i is link i
	// of the topology, with its own rate in segRate.
	segments []*sim.Serializer
	segRate  []float64 // per-segment bit rate (StackRate unless a link overrides)

	// topo is the hierarchical topology, nil on flat clusters. Paths
	// between leaves come precomputed from the topology; the flat walk
	// builds its daisy-chain path into the xfer's scratch buffer.
	topo *cluster.Topology

	loss   *sim.RNG
	jitter *sim.RNG

	// sched is the active fault schedule (nil or empty = healthy). It is
	// read-only while the simulation runs; an empty schedule draws no
	// extra randomness, so healthy runs are bit-identical with or
	// without the fault machinery.
	sched *faults.Schedule

	// retryObs, when set, observes every retransmission: the attempt
	// number being retried and the jittered RTO (seconds) about to be
	// slept. Tests use it to verify the backoff envelope.
	retryObs func(srcNode, dstNode, try int, rto float64)

	// freeXfer pools per-message transfer state machines. Each pooled
	// xfer carries its callbacks prebuilt, so the steady-state send path
	// allocates neither closures nor state per message.
	freeXfer []*xfer

	counters Counters

	// Deterministic instruments, registered on the engine's registry at
	// New so one snapshot covers the whole cell. Per-node and per-segment
	// series are pre-resolved into slices: the hot paths index, never
	// format labels.
	mTransfers *metrics.Counter
	mIntra     *metrics.Counter
	mCross     *metrics.Counter
	mWireBytes *metrics.Counter
	mHops      *metrics.Counter   // store-and-forward hops entered
	mDropCong  *metrics.Counter   // drops from buffer overflow
	mDropFault *metrics.Counter   // drops from the fault schedule
	mRetries   *metrics.Counter   // retransmission timeouts (= all drops)
	mRTODepth  *metrics.Histogram // backoff depth at each retransmission
	mTxBytes   []*metrics.Counter // per-node NIC wire bytes, retransmits included
	mTxFrames  []*metrics.Counter // per-node Ethernet frames clocked out
	mSegPeak   []*metrics.Gauge   // per-segment peak backlog, ns
}

// Receiver is the allocation-free alternative to Transfer's callback: the
// network delivers completion through the interface, so callers that
// already have a per-message object (e.g. an MPI packet) avoid building a
// closure per transfer.
type Receiver interface {
	Deliver(TransferStats)
}

// xfer is the state of one message moving through the fabric, pooled and
// recycled at delivery. The func fields are bound once when the struct is
// first created; because the struct is reused, the per-message cost of the
// whole callback pipeline is zero allocations in steady state.
type xfer struct {
	n                *Network
	srcNode, dstNode int
	payload          int
	start            sim.Time
	try              int
	done             func(TransferStats)
	recv             Receiver

	crossSwitch          bool
	srcSwitch, dstSwitch int
	rail                 int

	// path is the encoded hop walk (cluster.Topology encoding: >= 0 a
	// segment index, < 0 a switch fabric as ^switchID) and pos the next
	// hop to traverse. Topology paths are shared precomputed slices;
	// the flat daisy-chain builds into pathBuf, which the pool reuses.
	path    []int32
	pos     int
	pathBuf []int32

	latency sim.Duration // intraNode: host-side delivery latency

	stepFn     func()                    // next store-and-forward hop of the walk
	deliverFn  func(start, end sim.Time) // destination NIC finished receiving
	retryFn    func()                    // RTO expired: run the next attempt
	memDoneFn  func(start, end sim.Time) // intraNode: memory bus copy finished
	memDeliver func()                    // intraNode: delivery after host latency
}

// acquireXfer returns a pooled transfer state machine, creating (and
// binding the callbacks of) a new one only when the pool is empty.
func (n *Network) acquireXfer() *xfer {
	if k := len(n.freeXfer) - 1; k >= 0 {
		t := n.freeXfer[k]
		n.freeXfer[k] = nil
		n.freeXfer = n.freeXfer[:k]
		return t
	}
	t := &xfer{n: n}
	t.stepFn = t.step
	t.deliverFn = t.deliver
	t.retryFn = t.reattempt
	t.memDoneFn = t.memDone
	t.memDeliver = t.memDeliverNow
	return t
}

// releaseXfer recycles a completed transfer, dropping caller references so
// the pool does not pin them.
func (n *Network) releaseXfer(t *xfer) {
	t.done = nil
	t.recv = nil
	t.try = 0
	n.freeXfer = append(n.freeXfer, t)
}

// New builds the network for a cluster configuration. It panics on an
// invalid configuration, which is a programming error.
func New(e *sim.Engine, cfg cluster.Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rails := cfg.Rails()
	n := &Network{
		cfg:    cfg,
		e:      e,
		rails:  rails,
		topo:   cfg.Topo,
		nicTx:  make([]*sim.Serializer, cfg.Nodes*rails),
		nicRx:  make([]*sim.Serializer, cfg.Nodes*rails),
		memBus: make([]*sim.Serializer, cfg.Nodes),
		loss:   e.RNG("netsim.loss"),
		jitter: e.RNG("netsim.jitter"),
	}
	for i := 0; i < cfg.Nodes; i++ {
		for r := 0; r < rails; r++ {
			txName, rxName := fmt.Sprintf("node%d.tx", i), fmt.Sprintf("node%d.rx", i)
			if rails > 1 {
				txName = fmt.Sprintf("node%d.rail%d.tx", i, r)
				rxName = fmt.Sprintf("node%d.rail%d.rx", i, r)
			}
			n.nicTx[i*rails+r] = sim.NewSerializer(e, txName)
			n.nicRx[i*rails+r] = sim.NewSerializer(e, rxName)
		}
		n.memBus[i] = sim.NewSerializer(e, fmt.Sprintf("node%d.mem", i))
	}
	for i := 0; i < cfg.NumSwitches(); i++ {
		n.fabrics = append(n.fabrics, sim.NewSerializer(e, fmt.Sprintf("switch%d.fabric", i)))
	}
	if n.topo != nil {
		for i, l := range n.topo.Links {
			n.segments = append(n.segments, sim.NewSerializer(e, fmt.Sprintf("link%d(sw%d-sw%d)", i, l.A, l.B)))
			rate := l.Rate
			if rate <= 0 {
				rate = cfg.StackRate
			}
			n.segRate = append(n.segRate, rate)
		}
	} else {
		for i := 0; i < cfg.NumSwitches()-1; i++ {
			n.segments = append(n.segments, sim.NewSerializer(e, fmt.Sprintf("stack%d-%d", i, i+1)))
			n.segRate = append(n.segRate, cfg.StackRate)
		}
	}

	reg := e.Metrics()
	n.mTransfers = reg.Counter("net", "transfers_total")
	n.mIntra = reg.Counter("net", "intra_node_total")
	n.mCross = reg.Counter("net", "cross_switch_total")
	n.mWireBytes = reg.Counter("net", "wire_bytes_total")
	n.mHops = reg.Counter("net", "store_forward_hops_total")
	n.mDropCong = reg.Counter("net", "drops_congestion_total")
	n.mDropFault = reg.Counter("net", "drops_fault_total")
	n.mRetries = reg.Counter("net", "retries_total")
	n.mRTODepth = reg.Histogram("net", "rto_backoff_depth", []int64{0, 1, 2, 3, 4, 5})
	n.mTxBytes = make([]*metrics.Counter, cfg.Nodes)
	n.mTxFrames = make([]*metrics.Counter, cfg.Nodes)
	for i := range n.mTxBytes {
		node := metrics.L("node", strconv.Itoa(i))
		n.mTxBytes[i] = reg.Counter("net", "nic_tx_bytes_total", node)
		n.mTxFrames[i] = reg.Counter("net", "nic_tx_frames_total", node)
	}
	n.mSegPeak = make([]*metrics.Gauge, len(n.segments))
	for i := range n.mSegPeak {
		n.mSegPeak[i] = reg.Gauge("net", "segment_backlog_ns_max",
			metrics.L("segment", strconv.Itoa(i)))
	}
	return n
}

// Config returns the cluster configuration the network models.
func (n *Network) Config() cluster.Config { return n.cfg }

// SetFaults installs a fault schedule. Pass nil to restore the healthy
// cluster. The schedule must not be mutated while the simulation runs.
// It panics on an invalid schedule — including one whose rules bind no
// node or segment of this cluster — which is a programming error:
// a silently-unmatched fault window would run the healthy model while
// claiming to be degraded.
func (n *Network) SetFaults(s *faults.Schedule) {
	if err := s.ValidateFor(n.cfg.Nodes, len(n.segments)); err != nil {
		panic(err)
	}
	n.sched = s
}

// Faults returns the active fault schedule (nil when healthy).
func (n *Network) Faults() *faults.Schedule { return n.sched }

// SetRetryObserver installs a hook called on every retransmission with
// the source and destination node, the attempt number that failed, and
// the jittered RTO in seconds the retry will wait. Tests use it to
// check the backoff envelope; pass nil to remove.
func (n *Network) SetRetryObserver(f func(srcNode, dstNode, try int, rto float64)) {
	n.retryObs = f
}

// Stats returns a snapshot of the activity counters.
func (n *Network) Stats() Counters { return n.counters }

// jittered multiplies a nominal latency by a small lognormal factor,
// modelling interrupt coalescence and forwarding-engine variance.
func (n *Network) jittered(nominal float64) sim.Duration {
	f := 1 + n.cfg.JitterSigma*n.jitter.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return sim.DurationFromSeconds(nominal * f)
}

// Transfer moves payload bytes from srcNode to dstNode, invoking done in
// event context when the last byte has arrived at the destination host.
// Host CPU costs (MPI send/receive overheads) are deliberately excluded:
// they belong to the process and are modelled by internal/mpi.
func (n *Network) Transfer(srcNode, dstNode, payload int, done func(TransferStats)) {
	n.transfer(srcNode, dstNode, payload, done, nil)
}

// TransferTo is Transfer with an interface destination instead of a
// callback: completion arrives via to.Deliver. Callers that already own a
// per-message object implement Receiver on it and save the per-transfer
// closure allocation of the func form.
func (n *Network) TransferTo(srcNode, dstNode, payload int, to Receiver) {
	n.transfer(srcNode, dstNode, payload, nil, to)
}

func (n *Network) transfer(srcNode, dstNode, payload int, done func(TransferStats), recv Receiver) {
	if srcNode < 0 || srcNode >= n.cfg.Nodes || dstNode < 0 || dstNode >= n.cfg.Nodes {
		panic(fmt.Sprintf("netsim: transfer %d->%d outside cluster of %d nodes",
			srcNode, dstNode, n.cfg.Nodes))
	}
	if payload < 0 {
		panic(fmt.Sprintf("netsim: negative payload %d", payload))
	}
	n.counters.Transfers++
	n.mTransfers.Inc()
	t := n.acquireXfer()
	t.srcNode, t.dstNode, t.payload = srcNode, dstNode, payload
	t.rail = 0
	if n.rails > 1 {
		t.rail = (srcNode + dstNode) % n.rails
	}
	t.start = n.e.Now()
	t.done, t.recv = done, recv
	if srcNode == dstNode {
		n.counters.IntraNode++
		n.mIntra.Inc()
		t.intraNode()
		return
	}
	n.counters.WireBytes += uint64(n.cfg.WireBytes(payload))
	n.mWireBytes.Add(uint64(n.cfg.WireBytes(payload)))
	t.attempt()
}

// finish hands the completed transfer to its consumer and recycles the
// state machine. The xfer is released before the callback runs so a
// consumer that immediately starts another transfer reuses it.
func (t *xfer) finish(st TransferStats) {
	done, recv := t.done, t.recv
	t.n.releaseXfer(t)
	if done != nil {
		done(st)
	} else if recv != nil {
		recv.Deliver(st)
	}
}

// intraNode models a shared-memory copy through the node's memory bus,
// which both CPUs of an SMP node contend for.
func (t *xfer) intraNode() {
	n := t.n
	service := sim.DurationFromSeconds(float64(t.payload) * 8 / n.cfg.MemRate)
	t.latency = n.jittered(n.cfg.MemLatency)
	n.memBus[t.srcNode].Enqueue(service, t.memDoneFn)
}

func (t *xfer) memDone(_, _ sim.Time) { t.n.e.Schedule(t.latency, t.memDeliver) }

func (t *xfer) memDeliverNow() {
	t.finish(TransferStats{Sent: t.start, Delivered: t.n.e.Now()})
}

// attempt runs one end-to-end transmission try. A drop at the backplane
// or the destination port triggers a TCP-like retransmission timeout and
// a full retry from the source, exactly as a lost segment would.
//
//detlint:hotpath
func (t *xfer) attempt() {
	n := t.n
	cfg := &n.cfg
	wire := cfg.WireBytes(t.payload)

	// NIC outage windows lose the attempt outright — the segment went
	// onto a dead wire — and the sender discovers it via the TCP timeout.
	// This checks only the schedule (no RNG), so it is deterministic.
	if n.sched.NICDown(t.srcNode, n.e.Now()) || n.sched.NICDown(t.dstNode, n.e.Now()) {
		n.counters.FaultDrops++
		n.mDropFault.Inc()
		n.retry(t)
		return
	}

	// Link degradation stretches the serialisation time: the NIC clocks
	// bits onto the wire at a fraction of the nominal rate.
	txRate := cfg.LinkRate * n.sched.LinkFactor(t.srcNode, n.e.Now())
	txService := sim.DurationFromSeconds(float64(wire) * 8 / txRate)

	// Per-NIC accounting sits here, not in transfer, so retransmissions
	// count as the real wire activity they are.
	n.mTxBytes[t.srcNode].Add(uint64(wire))
	n.mTxFrames[t.srcNode].Add(uint64(cfg.Frames(t.payload)))

	txEnd := n.nicTx[t.srcNode*n.rails+t.rail].Enqueue(txService, nil)
	txStart := txEnd.Add(-txService)

	// The first frame must be fully received by the switch before it can
	// be forwarded (store-and-forward), then crosses one hop.
	sfDelay := sim.DurationFromSeconds(cfg.FrameTime(t.payload)) + n.jittered(cfg.SwitchLatency)

	t.srcSwitch, t.dstSwitch = cfg.SwitchOf(t.srcNode), cfg.SwitchOf(t.dstNode)
	t.crossSwitch = t.srcSwitch != t.dstSwitch
	t.buildPath()
	n.e.At(txStart.Add(sfDelay), t.stepFn)
}

// buildPath resolves the hop walk for this attempt. Hierarchical
// topologies hand back their precomputed leaf-pair path; the flat
// cluster rebuilds the daisy-chain walk — ingress fabric, the stacking
// segments between the two switches in travel order (segment i joins
// switch i and i+1), egress fabric — into the xfer's pooled buffer.
//
//detlint:hotpath
func (t *xfer) buildPath() {
	t.pos = 0
	if topo := t.n.topo; topo != nil {
		t.path = topo.PathHops(t.srcSwitch, t.dstSwitch)
		return
	}
	p := t.pathBuf[:0]
	p = append(p, cluster.FabricHop(t.srcSwitch))
	if t.crossSwitch {
		if t.srcSwitch < t.dstSwitch {
			for s := t.srcSwitch; s < t.dstSwitch; s++ {
				p = append(p, int32(s))
			}
		} else {
			for s := t.srcSwitch - 1; s >= t.dstSwitch; s-- {
				p = append(p, int32(s))
			}
		}
		p = append(p, cluster.FabricHop(t.dstSwitch))
	}
	t.pathBuf = p
	t.path = p
}

// step traverses the next hop of the walk — a switch fabric (the 510T's
// 2.1 Gbit/s shared fabric, or a spine/router of a hierarchical tree)
// or an inter-switch segment, the chain whose saturation produces the
// paper's Figure 4 tails — and is re-entered on each un-dropped
// store-and-forward handoff until the path ends at the destination
// port.
//
//detlint:hotpath
func (t *xfer) step() {
	n := t.n
	if t.pos >= len(t.path) {
		t.afterFabric()
		return
	}
	h := t.path[t.pos]
	t.pos++
	if sw, ok := cluster.IsFabricHop(h); ok {
		if n.traverseStage(n.fabrics[sw], -1, t.payload, true, t.stepFn) {
			n.retry(t)
		}
		return
	}
	if n.traverseStage(n.segments[h], int(h), t.payload, false, t.stepFn) {
		n.retry(t)
	}
}

// afterFabric is the destination port: the last hop from the egress
// switch into the receiving host's NIC.
//
//detlint:hotpath
func (t *xfer) afterFabric() {
	n := t.n
	cfg := &n.cfg
	// Drop if the port's buffers have overflowed. The congestion check
	// runs first so healthy runs consume the loss stream identically
	// whether or not a schedule is installed.
	if n.dropped(n.nicRx[t.dstNode*n.rails+t.rail].Backlog(), cfg.NICBufferDelay()) {
		n.mDropCong.Inc()
		n.retry(t)
		return
	}
	if boost := n.sched.DropBoost(t.dstNode, n.e.Now()); boost > 0 && n.loss.Bool(boost) {
		n.counters.FaultDrops++
		n.mDropFault.Inc()
		n.retry(t)
		return
	}
	// The delivered stream cannot run faster than the slowest link on
	// the path: a degraded source NIC throttles the whole pipeline,
	// not just its own transmit queue.
	lf := n.sched.LinkFactor(t.dstNode, n.e.Now())
	if src := n.sched.LinkFactor(t.srcNode, n.e.Now()); src < lf {
		lf = src
	}
	wire := cfg.WireBytes(t.payload)
	rxService := sim.DurationFromSeconds(float64(wire) * 8 / (cfg.LinkRate * lf))
	n.nicRx[t.dstNode*n.rails+t.rail].Enqueue(rxService, t.deliverFn)
}

//detlint:hotpath
func (t *xfer) deliver(_, end sim.Time) {
	if t.crossSwitch {
		t.n.counters.CrossSwitch++
		t.n.mCross.Inc()
	}
	t.finish(TransferStats{
		Sent:        t.start,
		Delivered:   end,
		Retries:     t.try,
		CrossSwitch: t.crossSwitch,
	})
}

// reattempt runs when the retransmission timeout expires.
//
//detlint:hotpath
func (t *xfer) reattempt() {
	t.try++
	t.attempt()
}

// traverseStage sends a message through one backplane-speed stage (a
// switch fabric or a stacking segment): it consumes the full message's
// worth of the stage's capacity — bits at the stack rate plus per-frame
// forwarding time — but hands off downstream cut-through style, one
// frame after the stage starts serving the message, so large messages
// pipeline across stages instead of paying store-and-forward per stage.
// The handoff respects queueing: if the stage is backed up, the message
// waits its full turn.
//
// Switch fabrics (perFrame=true, seg=-1) pay the forwarding engine's
// per-frame processing on top of the bit rate; stacking segments
// (perFrame=false, seg = segment index) are simple TDM pipes that move
// bits at the stack rate only — which is why small-message contention is
// a fabric phenomenon while the backplane only matters once large
// transfers approach its bit capacity. A BackplaneDegrade fault scales
// the segment's rate down.
//
// A buffer overflow claims the message immediately and traverseStage
// reports it by returning true; otherwise arrive fires at handoff time.
func (n *Network) traverseStage(s *sim.Serializer, seg, payload int, perFrame bool, arrive func()) (droppedNow bool) {
	n.mHops.Inc()
	wait := s.Backlog()
	if wait > n.counters.MaxStackWait {
		n.counters.MaxStackWait = wait
	}
	if seg >= 0 {
		n.mSegPeak[seg].SetMax(int64(wait))
	}
	if n.dropped(wait, n.cfg.StackBufferDelay()) {
		n.mDropCong.Inc()
		return true
	}
	rate := n.cfg.StackRate
	if seg >= 0 {
		rate = n.segRate[seg] * n.sched.StackFactor(seg, n.e.Now())
	}
	serviceSec := float64(n.cfg.WireBytes(payload)) * 8 / rate
	frame := n.cfg.WireBytes(payload)
	if max := n.cfg.MTU + n.cfg.FrameOverhead; frame > max {
		frame = max
	}
	oneFrame := float64(frame) * 8 / rate
	if perFrame {
		serviceSec = n.cfg.FabricService(payload)
		oneFrame += n.cfg.FabricPerFrame
	}
	if n.cfg.FabricJitter > 0 {
		// Lognormal service variance: mean preserved, CV ≈ FabricJitter.
		sigma2 := math.Log1p(n.cfg.FabricJitter * n.cfg.FabricJitter)
		serviceSec *= n.jitter.LogNormal(-sigma2/2, math.Sqrt(sigma2))
	}
	service := sim.DurationFromSeconds(serviceSec)
	end := s.Enqueue(service, nil)
	handoff := end.Add(-service).Add(sim.DurationFromSeconds(oneFrame)).Add(n.jittered(n.cfg.SwitchLatency))
	n.e.At(handoff, arrive)
	return false
}

// dropped decides whether congestion claims this message.
func (n *Network) dropped(backlog sim.Duration, threshold float64) bool {
	p := n.cfg.DropProb(backlog.Seconds(), threshold)
	return p > 0 && n.loss.Bool(p)
}

// retry schedules a retransmission after the TCP timeout, with
// exponential backoff capped to keep simulated time bounded under
// pathological saturation.
//
//detlint:hotpath
func (n *Network) retry(t *xfer) {
	n.counters.Retries++
	n.mRetries.Inc()
	n.mRTODepth.Observe(int64(t.try))
	exp := t.try
	if exp > 5 {
		exp = 5
	}
	rto := n.cfg.RTO
	for i := 0; i < exp; i++ {
		rto *= n.cfg.RTOBackoff
	}
	// ±10% jitter so synchronized losses do not retransmit in lock-step.
	rto *= 0.9 + 0.2*n.jitter.Float64()
	if n.retryObs != nil {
		n.retryObs(t.srcNode, t.dstNode, t.try, rto)
	}
	n.e.Schedule(sim.DurationFromSeconds(rto), t.retryFn)
}

// Utilization summarises how busy each class of resource has been over
// an interval of virtual time — the accounting behind the paper's
// backplane-saturation analysis ("approximately ... 2.02 Gbit/s was
// being delivered between the two fully utilised switches").
type Utilization struct {
	// Busy fractions in [0,1] (cumulative service time / elapsed).
	BusiestNICTx   float64
	BusiestNICRx   float64
	BusiestFabric  float64
	BusiestSegment float64
	MeanSegment    float64
	// DeliveredStackBits is the total traffic the backplane segments
	// carried, in bits (wire bits × segments crossed).
	DeliveredStackBits float64
}

// UtilizationSince computes busy fractions for the window from start to
// the current virtual time. Service time is accumulated from network
// creation, so pass start=0 (or accept slight over-counting if traffic
// flowed before the window).
func (n *Network) UtilizationSince(start sim.Time) Utilization {
	elapsed := n.e.Now().Sub(start).Seconds()
	if elapsed <= 0 {
		return Utilization{}
	}
	maxBusy := func(ss []*sim.Serializer) float64 {
		worst := 0.0
		for _, s := range ss {
			if f := s.BusyTime().Seconds() / elapsed; f > worst {
				worst = f
			}
		}
		return worst
	}
	u := Utilization{
		BusiestNICTx:   maxBusy(n.nicTx),
		BusiestNICRx:   maxBusy(n.nicRx),
		BusiestFabric:  maxBusy(n.fabrics),
		BusiestSegment: maxBusy(n.segments),
	}
	var total float64
	for _, s := range n.segments {
		busy := s.BusyTime().Seconds()
		total += busy / elapsed
		u.DeliveredStackBits += busy * n.cfg.StackRate
	}
	if len(n.segments) > 0 {
		u.MeanSegment = total / float64(len(n.segments))
	}
	return u
}

// TxBacklog reports the deepest transmit queue across a node's NIC
// rails; tests and the MPI library's flow-control heuristics use it.
func (n *Network) TxBacklog(node int) sim.Duration {
	var worst sim.Duration
	for r := 0; r < n.rails; r++ {
		if b := n.nicTx[node*n.rails+r].Backlog(); b > worst {
			worst = b
		}
	}
	return worst
}

// RxBacklog reports the deepest receive-side queue across a node's NIC
// rails.
func (n *Network) RxBacklog(node int) sim.Duration {
	var worst sim.Duration
	for r := 0; r < n.rails; r++ {
		if b := n.nicRx[node*n.rails+r].Backlog(); b > worst {
			worst = b
		}
	}
	return worst
}

// StackBacklog reports the deepest backplane-segment queue right now.
func (n *Network) StackBacklog() sim.Duration {
	var worst sim.Duration
	for _, s := range n.segments {
		if b := s.Backlog(); b > worst {
			worst = b
		}
	}
	return worst
}

// StackBusyTime reports cumulative service time across all backplane
// segments, for utilisation accounting in saturation experiments.
func (n *Network) StackBusyTime() sim.Duration {
	var total sim.Duration
	for _, s := range n.segments {
		total += s.BusyTime()
	}
	return total
}
