package netsim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// quietPerseus returns the Perseus config with stochastic noise disabled,
// so latency arithmetic is exact.
func quietPerseus() cluster.Config {
	cfg := cluster.Perseus()
	cfg.JitterSigma = 0
	cfg.SpikeProb = 0
	cfg.FabricJitter = 0
	return cfg
}

// oneTransfer runs a single transfer on an otherwise idle network and
// returns its end-to-end duration in seconds.
func oneTransfer(t *testing.T, cfg cluster.Config, src, dst, size int) (float64, TransferStats) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	var ts TransferStats
	n.Transfer(src, dst, size, func(s TransferStats) { ts = s })
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	return ts.Delivered.Sub(ts.Sent).Seconds(), ts
}

// segmentStage returns the uncontended cut-through delay of one stacking
// segment: one frame's bits at the stack rate plus the forwarding hop.
func segmentStage(cfg cluster.Config, size int) float64 {
	frame := cfg.WireBytes(size)
	if max := cfg.MTU + cfg.FrameOverhead; frame > max {
		frame = max
	}
	return float64(frame)*8/cfg.StackRate + cfg.SwitchLatency
}

// stageFrame returns the uncontended cut-through delay of one switch
// fabric pass, which additionally pays the forwarding engine's per-frame
// processing.
func stageFrame(cfg cluster.Config, size int) float64 {
	return segmentStage(cfg, size) + cfg.FabricPerFrame
}

func TestUncontendedLatencyFormula(t *testing.T) {
	cfg := quietPerseus()
	for _, size := range []int{0, 64, 1024, 16384, 131072} {
		got, ts := oneTransfer(t, cfg, 0, 1, size)
		// Same-switch path: first-frame store-and-forward + hop, a
		// cut-through pass over the switch fabric, then the pipelined
		// stream onto the destination link.
		want := cfg.FrameTime(size) + cfg.SwitchLatency +
			stageFrame(cfg, size) +
			cfg.TransmitTime(size, cfg.LinkRate)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("size %d: latency %v, want %v", size, got, want)
		}
		if ts.CrossSwitch {
			t.Errorf("size %d: nodes 0,1 should share a switch", size)
		}
		if ts.Retries != 0 {
			t.Errorf("size %d: unexpected retries", size)
		}
	}
}

func TestCrossSwitchAddsBackplane(t *testing.T) {
	cfg := quietPerseus()
	same, _ := oneTransfer(t, cfg, 0, 1, 16384)
	cross, ts := oneTransfer(t, cfg, 0, 24, 16384)
	if !ts.CrossSwitch {
		t.Fatal("nodes 0 and 24 should be on different switches")
	}
	// One stacking segment plus the egress switch's fabric.
	want := same + segmentStage(cfg, 16384) + stageFrame(cfg, 16384)
	if math.Abs(cross-want) > 1e-9 {
		t.Errorf("cross-switch latency %v, want %v", cross, want)
	}
	// Spanning a further switch adds one more segment.
	far, ts2 := oneTransfer(t, cfg, 0, 48, 16384)
	if !ts2.CrossSwitch {
		t.Fatal("nodes 0 and 48 should be two switches apart")
	}
	if math.Abs(far-(cross+segmentStage(cfg, 16384))) > 1e-9 {
		t.Errorf("two-segment latency %v, want %v", far, cross+segmentStage(cfg, 16384))
	}
}

func TestGoodputNear81Mbit(t *testing.T) {
	// The paper: "81 Mbit/s is achieved between two processes for 16
	// Kbyte messages". The network-only portion must leave room for
	// ~60 µs of host overhead and still land near 81 Mbit/s.
	cfg := quietPerseus()
	lat, _ := oneTransfer(t, cfg, 0, 1, 16384)
	hostOverhead := cfg.SendOverhead + cfg.RecvOverhead + float64(16384)*cfg.PerByteCPU
	goodput := 16384 * 8 / (lat + hostOverhead)
	if goodput < 76e6 || goodput > 86e6 {
		t.Errorf("16KB goodput = %.1f Mbit/s, want ~81", goodput/1e6)
	}
}

func TestLatencyLinearInSize(t *testing.T) {
	// T = l + b/W: doubling the size should roughly double the
	// size-dependent part.
	cfg := quietPerseus()
	t1, _ := oneTransfer(t, cfg, 0, 1, 32768)
	t2, _ := oneTransfer(t, cfg, 0, 1, 65536)
	t4, _ := oneTransfer(t, cfg, 0, 1, 131072)
	d1, d2 := t2-t1, t4-t2
	if math.Abs(d2-2*d1)/d2 > 0.05 {
		t.Errorf("latency not linear: deltas %v, %v", d1, d2)
	}
}

func TestIntraNodeFasterForSmall(t *testing.T) {
	cfg := quietPerseus()
	intra, ts := oneTransfer(t, cfg, 3, 3, 1024)
	inter, _ := oneTransfer(t, cfg, 3, 4, 1024)
	if intra >= inter {
		t.Errorf("intra-node %v should beat inter-node %v for 1KB", intra, inter)
	}
	if ts.CrossSwitch {
		t.Error("intra-node transfer cannot cross switches")
	}
}

func TestNICSharingSerialisesTransfers(t *testing.T) {
	// Two simultaneous sends from one node (the SMP case) must queue at
	// the single NIC: the second finishes roughly one transmit time
	// after the first.
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		dst := 1 + i
		n.Transfer(0, dst, 16384, func(s TransferStats) { ends = append(ends, s.Delivered) })
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	gap := ends[1].Sub(ends[0]).Seconds()
	want := cfg.TransmitTime(16384, cfg.LinkRate)
	if math.Abs(gap-want) > 1e-9 {
		t.Errorf("NIC sharing gap = %v, want %v", gap, want)
	}
}

func TestRxContentionSerialisesAtReceiver(t *testing.T) {
	// Many senders to one receiver: the receive link is the bottleneck,
	// so N transfers take ~N transmit times to deliver.
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	const senders = 8
	var last sim.Time
	done := 0
	for i := 0; i < senders; i++ {
		n.Transfer(1+i, 0, 16384, func(s TransferStats) {
			done++
			if s.Delivered > last {
				last = s.Delivered
			}
		})
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if done != senders {
		t.Fatalf("delivered %d of %d", done, senders)
	}
	wire := cfg.TransmitTime(16384, cfg.LinkRate)
	if last.Seconds() < float64(senders)*wire {
		t.Errorf("last delivery %v too fast for a serialised receive link (%v)",
			last.Seconds(), float64(senders)*wire)
	}
}

func TestSaturationCausesRetries(t *testing.T) {
	// Hammer the backplane with far more offered load than 2.1 Gbit/s:
	// 60 nodes on switch 0 each stream 10 × 64 KB to a partner on
	// switch 1. Buffers must overflow and retransmissions occur.
	cfg := quietPerseus()
	e := sim.NewEngine(2)
	n := New(e, cfg)
	delivered := 0
	total := 0
	for src := 0; src < 20; src++ {
		for k := 0; k < 10; k++ {
			total++
			n.Transfer(src, 24+src, 65536, func(TransferStats) { delivered++ })
		}
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
	st := n.Stats()
	if st.Retries == 0 {
		t.Error("expected retransmissions under saturation")
	}
	if st.MaxStackWait.Seconds() < cfg.StackBufferDelay() {
		t.Errorf("stack backlog %v never reached the buffer limit %v",
			st.MaxStackWait.Seconds(), cfg.StackBufferDelay())
	}
}

func TestNoRetriesWhenUncontended(t *testing.T) {
	cfg := cluster.Perseus() // jitter on: retries must still be impossible
	e := sim.NewEngine(3)
	n := New(e, cfg)
	for i := 0; i < 50; i++ {
		n.Transfer(0, 30, 1024, nil)
		n.Transfer(5, 60, 1024, nil)
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Retries != 0 {
		t.Errorf("uncontended traffic suffered %d retries", n.Stats().Retries)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []sim.Time {
		e := sim.NewEngine(seed)
		n := New(e, cluster.Perseus())
		var out []sim.Time
		for i := 0; i < 30; i++ {
			n.Transfer(i%10, 30+i%10, 4096, func(s TransferStats) {
				out = append(out, s.Delivered)
			})
		}
		if _, err := e.Run(sim.Forever); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at transfer %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jittered timings")
	}
}

func TestCountersTrackActivity(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	n.Transfer(0, 0, 100, nil)  // intra-node
	n.Transfer(0, 1, 100, nil)  // same switch
	n.Transfer(0, 30, 100, nil) // cross switch
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Transfers != 3 || st.IntraNode != 1 || st.CrossSwitch != 1 {
		t.Errorf("counters = %+v", st)
	}
	if st.WireBytes != uint64(2*cfg.WireBytes(100)) {
		t.Errorf("WireBytes = %d", st.WireBytes)
	}
}

func TestTransferValidation(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, quietPerseus())
	for name, f := range map[string]func(){
		"bad src":          func() { n.Transfer(-1, 0, 10, nil) },
		"bad dst":          func() { n.Transfer(0, 1000, 10, nil) },
		"negative payload": func() { n.Transfer(0, 1, -5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestZeroByteTransferStillCostsAFrame(t *testing.T) {
	cfg := quietPerseus()
	lat, _ := oneTransfer(t, cfg, 0, 1, 0)
	if lat <= 0 {
		t.Error("zero-byte transfer should still take a minimal frame time")
	}
	min := 2 * float64(cfg.MinFrame) * 8 / cfg.LinkRate
	if lat < min {
		t.Errorf("latency %v below two minimal frame times %v", lat, min)
	}
}
