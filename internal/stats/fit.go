package stats

import (
	"errors"
	"math"
)

// The paper (§2) notes that MPIBench's histograms can be modelled by
// "parametrised functions ... based on fits to the histograms using
// standard functions". This file implements those fits and the
// goodness-of-fit measure used to pick between them.

// ErrTooFewSamples is returned when a histogram has too little data to fit.
var ErrTooFewSamples = errors.New("stats: too few samples to fit")

// fitShift places the support bound slightly below the observed minimum,
// since the true contention-free bound is at or below the smallest sample.
func fitShift(h *Histogram) float64 {
	shift := h.Min() - 0.02*(h.Mean()-h.Min())
	if shift < 0 {
		shift = 0
	}
	return shift
}

// FitShiftedLogNormal fits by method of moments above an automatically
// chosen shift.
func FitShiftedLogNormal(h *Histogram) (ShiftedLogNormal, error) {
	if h.Count() < 10 {
		return ShiftedLogNormal{}, ErrTooFewSamples
	}
	shift := fitShift(h)
	m := h.Mean() - shift
	v := h.Std() * h.Std()
	if m <= 0 || v <= 0 {
		return ShiftedLogNormal{}, errors.New("stats: degenerate histogram for lognormal fit")
	}
	sigma2 := math.Log(1 + v/(m*m))
	return ShiftedLogNormal{
		Shift: shift,
		Mu:    math.Log(m) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}, nil
}

// FitShiftedExp fits by matching the mean above the shift.
func FitShiftedExp(h *Histogram) (ShiftedExp, error) {
	if h.Count() < 10 {
		return ShiftedExp{}, ErrTooFewSamples
	}
	shift := fitShift(h)
	scale := h.Mean() - shift
	if scale <= 0 {
		return ShiftedExp{}, errors.New("stats: degenerate histogram for exponential fit")
	}
	return ShiftedExp{Shift: shift, Scale: scale}, nil
}

// FitWeibull fits shape and scale by linear regression of
// ln(-ln(1-F)) against ln(x-shift) over the empirical CDF at bin edges.
func FitWeibull(h *Histogram) (Weibull, error) {
	if h.Count() < 10 {
		return Weibull{}, ErrTooFewSamples
	}
	shift := fitShift(h)
	var xs, ys []float64
	var cum uint64
	n := float64(h.Count())
	for _, b := range h.Bins() {
		cum += b.Count
		f := float64(cum) / n
		if f <= 0 || f >= 1 {
			continue
		}
		x := b.Hi - shift
		if x <= 0 {
			continue
		}
		xs = append(xs, math.Log(x))
		ys = append(ys, math.Log(-math.Log(1-f)))
	}
	if len(xs) < 2 {
		return Weibull{}, errors.New("stats: too few distinct bins for Weibull fit")
	}
	slope, intercept := linearRegression(xs, ys)
	if slope <= 0 || math.IsNaN(slope) {
		return Weibull{}, errors.New("stats: Weibull regression produced non-positive shape")
	}
	return Weibull{
		Shift: shift,
		Shape: slope,
		Scale: math.Exp(-intercept / slope),
	}, nil
}

// linearRegression returns the least-squares slope and intercept of y on x.
func linearRegression(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// KSDistance returns the Kolmogorov–Smirnov statistic between the
// histogram's empirical CDF and the fitted distribution, evaluated at
// every bin edge (where the empirical CDF jumps).
func KSDistance(h *Histogram, d Dist) float64 {
	if h.Count() == 0 {
		return 0
	}
	var worst float64
	var cum uint64
	n := float64(h.Count())
	for _, b := range h.Bins() {
		// Before the bin's mass.
		if diff := math.Abs(float64(cum)/n - d.CDF(b.Lo)); diff > worst {
			worst = diff
		}
		cum += b.Count
		// After the bin's mass.
		if diff := math.Abs(float64(cum)/n - d.CDF(b.Hi)); diff > worst {
			worst = diff
		}
	}
	return worst
}

// Fit holds the outcome of fitting one family to a histogram.
type Fit struct {
	Name string
	Dist Dist
	KS   float64
}

// FitBest tries every parametric family and returns all successful fits
// ordered best-first by KS distance. An empty slice means nothing fit.
func FitBest(h *Histogram) []Fit {
	var fits []Fit
	if d, err := FitShiftedLogNormal(h); err == nil {
		fits = append(fits, Fit{"shifted-lognormal", d, KSDistance(h, d)})
	}
	if d, err := FitShiftedExp(h); err == nil {
		fits = append(fits, Fit{"shifted-exponential", d, KSDistance(h, d)})
	}
	if d, err := FitWeibull(h); err == nil {
		fits = append(fits, Fit{"weibull", d, KSDistance(h, d)})
	}
	// Insertion sort: at most three entries.
	for i := 1; i < len(fits); i++ {
		for j := i; j > 0 && fits[j].KS < fits[j-1].KS; j-- {
			fits[j], fits[j-1] = fits[j-1], fits[j]
		}
	}
	return fits
}
