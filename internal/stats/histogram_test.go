package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

type testRand struct {
	u, n []float64
	i, j int
}

func (r *testRand) Float64() float64 {
	v := r.u[r.i%len(r.u)]
	r.i++
	return v
}
func (r *testRand) NormFloat64() float64 {
	v := r.n[r.j%len(r.n)]
	r.j++
	return v
}

// xorRand is a tiny deterministic Rand for tests, independent of sim.
type xorRand struct {
	s     uint64
	gauss float64
	have  bool
}

func newXorRand(seed uint64) *xorRand { return &xorRand{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *xorRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
func (r *xorRand) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *xorRand) NormFloat64() float64 {
	if r.have {
		r.have = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.have = true
		return u * f
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1.0)
	for _, v := range []float64{0.5, 1.5, 1.7, 2.2, 2.4, 2.9} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	bins := h.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %+v", bins)
	}
	wantCounts := []uint64{1, 2, 3}
	for i, b := range bins {
		if b.Count != wantCounts[i] {
			t.Errorf("bin %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if h.Mode() != 2.5 {
		t.Errorf("Mode = %v, want 2.5", h.Mode())
	}
	if h.Min() != 0.5 || h.Max() != 2.9 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramExactMeanNotBinned(t *testing.T) {
	h := NewHistogram(1000) // one huge bin
	h.Add(1)
	h.Add(2)
	if h.Mean() != 1.5 {
		t.Errorf("Mean = %v, should be exact regardless of binning", h.Mean())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0.25)
	r := newXorRand(1)
	for i := 0; i < 10000; i++ {
		h.Add(r.Float64() * 10)
	}
	total := 0.0
	for _, b := range h.Bins() {
		total += b.Density * (b.Hi - b.Lo)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("PDF integrates to %v", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5) // one observation per bin 0..99
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1 {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0); q != 0.5 {
		t.Errorf("q0 = %v, want min", q)
	}
	if q := h.Quantile(1); q != 99.5 {
		t.Errorf("q1 = %v, want max", q)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram(0.5)
	r := newXorRand(2)
	for i := 0; i < 5000; i++ {
		h.Add(r.Float64()*4 + 1)
	}
	prev := -1.0
	for x := 0.0; x < 6; x += 0.1 {
		c := h.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", x, c)
		}
		prev = c
	}
	if h.CDF(0.5) != 0 {
		t.Error("CDF below support should be 0")
	}
	if h.CDF(10) != 1 {
		t.Error("CDF above support should be 1")
	}
}

func TestHistogramSampleMatchesSource(t *testing.T) {
	src := NewHistogram(0.0001)
	r := newXorRand(3)
	for i := 0; i < 20000; i++ {
		// A bimodal distribution: body near 1ms plus outliers near 10ms.
		v := 0.001 + 0.0002*r.Float64()
		if r.Float64() < 0.05 {
			v = 0.010 + 0.001*r.Float64()
		}
		src.Add(v)
	}
	resampled := NewHistogram(0.0001)
	for i := 0; i < 20000; i++ {
		resampled.Add(src.Sample(r))
	}
	if !almostEqual(src.Mean(), resampled.Mean(), 0.05) {
		t.Errorf("resampled mean %v vs source %v", resampled.Mean(), src.Mean())
	}
	// The outlier mass must survive resampling.
	srcTail := 1 - src.CDF(0.005)
	resTail := 1 - resampled.CDF(0.005)
	if math.Abs(srcTail-resTail) > 0.01 {
		t.Errorf("tail mass: source %v, resampled %v", srcTail, resTail)
	}
}

func TestHistogramSampleIntraBinJitter(t *testing.T) {
	h := NewHistogram(1.0)
	h.Add(5.5)
	r := newXorRand(4)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := h.Sample(r)
		if v < 5 || v >= 6 {
			t.Fatalf("sample %v outside the only bin [5,6)", v)
		}
		seen[v] = true
	}
	if len(seen) < 50 {
		t.Errorf("samples not jittered within bin: %d distinct values", len(seen))
	}
}

func TestHistogramMergeSameWidth(t *testing.T) {
	a, b := NewHistogram(1.0), NewHistogram(1.0)
	a.Add(1.5)
	b.Add(2.5)
	b.Add(1.2)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("Count = %d", a.Count())
	}
	bins := a.Bins()
	if len(bins) != 2 || bins[0].Count != 2 || bins[1].Count != 1 {
		t.Errorf("merged bins = %+v", bins)
	}
}

func TestHistogramRebin(t *testing.T) {
	h := NewHistogram(0.1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) * 0.1)
	}
	coarse := h.Rebin(1.0)
	if coarse.Count() != 100 {
		t.Errorf("rebinned count = %d", coarse.Count())
	}
	if len(coarse.Bins()) >= len(h.Bins()) {
		t.Error("coarser binning should have fewer bins")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0.5)
	r := newXorRand(5)
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64() * 20)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Mean() != h.Mean() || back.BinWidth() != h.BinWidth() {
		t.Error("round trip lost summary data")
	}
	hb, bb := h.Bins(), back.Bins()
	if len(hb) != len(bb) {
		t.Fatalf("bin count changed: %d -> %d", len(hb), len(bb))
	}
	for i := range hb {
		if hb[i] != bb[i] {
			t.Fatalf("bin %d changed: %+v -> %+v", i, hb[i], bb[i])
		}
	}
}

func TestHistogramJSONRejectsBad(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"bin_width":0}`), &h); err == nil {
		t.Error("zero bin width should fail")
	}
	if err := json.Unmarshal([]byte(`{"bin_width":1,"indices":[1],"counts":[]}`), &h); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestHistogramInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero width", func() { NewHistogram(0) })
	mustPanic("NaN add", func() { NewHistogram(1).Add(math.NaN()) })
	mustPanic("empty sample", func() { NewHistogram(1).Sample(newXorRand(1)) })
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	r := newXorRand(6)
	f := func(seed uint16) bool {
		h := NewHistogram(0.01)
		rr := newXorRand(uint64(seed) + 1)
		n := 50 + int(seed%200)
		for i := 0; i < n; i++ {
			h.Add(rr.Float64()*rr.Float64()*3 + 0.1)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 || v < h.Min()-1e-12 || v > h.Max()+1e-12 {
				return false
			}
			prev = v
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CDF(Quantile(q)) ≈ q for continuous-ish histograms.
func TestHistogramCDFQuantileInverse(t *testing.T) {
	h := NewHistogram(0.05)
	r := newXorRand(7)
	for i := 0; i < 20000; i++ {
		h.Add(r.Float64() * 5)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.CDF(h.Quantile(q))
		if math.Abs(got-q) > 0.02 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}
