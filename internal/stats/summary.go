// Package stats provides the statistical machinery behind MPIBench and
// PEVPM: streaming summaries, histograms of individual operation times
// (the paper's probability distribution functions), empirical and
// parametric samplers, distribution fitting and goodness-of-fit measures.
//
// The package is self-contained: random draws go through the small Rand
// interface, satisfied by internal/sim.RNG, so stats has no dependency on
// the simulation kernel.
package stats

import (
	"fmt"
	"math"
)

// Rand is the source of randomness samplers draw from.
type Rand interface {
	Float64() float64     // uniform in [0,1)
	NormFloat64() float64 // standard normal
}

// Summary accumulates streaming moments of a series using Welford's
// algorithm, which is numerically stable for long runs.
type Summary struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"` // sum of squared deviations from the mean
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.M2 += delta * (x - s.Mean)
}

// Merge combines another summary into this one (Chan et al. parallel
// variance update), as if all its observations had been Added here.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := float64(s.N + o.N)
	delta := o.Mean - s.Mean
	s.M2 += o.M2 + delta*delta*float64(s.N)*float64(o.N)/n
	s.Mean += delta * float64(o.N) / n
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
}

// Var returns the population variance (zero for fewer than two samples).
func (s *Summary) Var() float64 {
	if s.N < 2 {
		return 0
	}
	return s.M2 / float64(s.N)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// String formats the summary compactly for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		s.N, s.Mean, s.Std(), s.Min, s.Max)
}
