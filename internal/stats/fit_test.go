package stats

import (
	"errors"
	"math"
	"testing"
)

func histFrom(s Sampler, seed uint64, n int, width float64) *Histogram {
	h := NewHistogram(width)
	r := newXorRand(seed)
	for i := 0; i < n; i++ {
		h.Add(s.Sample(r))
	}
	return h
}

func TestFitShiftedLogNormalRecovers(t *testing.T) {
	truth := ShiftedLogNormal{Shift: 100e-6, Mu: math.Log(80e-6), Sigma: 0.4}
	h := histFrom(truth, 1, 50000, 2e-6)
	fit, err := FitShiftedLogNormal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Mean(), truth.Mean(), 0.02) {
		t.Errorf("fit mean %v vs truth %v", fit.Mean(), truth.Mean())
	}
	if ks := KSDistance(h, fit); ks > 0.08 {
		t.Errorf("KS distance %v too large", ks)
	}
}

func TestFitShiftedExpRecovers(t *testing.T) {
	truth := ShiftedExp{Shift: 0.001, Scale: 0.002}
	h := histFrom(truth, 2, 50000, 1e-4)
	fit, err := FitShiftedExp(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Mean(), truth.Mean(), 0.02) {
		t.Errorf("fit mean %v vs truth %v", fit.Mean(), truth.Mean())
	}
	if ks := KSDistance(h, fit); ks > 0.08 {
		t.Errorf("KS distance %v", ks)
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	truth := Weibull{Shift: 0.0005, Shape: 2.2, Scale: 0.003}
	h := histFrom(truth, 3, 50000, 1e-4)
	fit, err := FitWeibull(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-truth.Shape) > 0.4 {
		t.Errorf("fit shape %v vs truth %v", fit.Shape, truth.Shape)
	}
	if ks := KSDistance(h, fit); ks > 0.1 {
		t.Errorf("KS distance %v", ks)
	}
}

func TestFitBestPrefersRightFamily(t *testing.T) {
	truth := ShiftedExp{Shift: 0.001, Scale: 0.004}
	h := histFrom(truth, 4, 50000, 1e-4)
	fits := FitBest(h)
	if len(fits) == 0 {
		t.Fatal("no fits")
	}
	// KS should be sorted ascending.
	for i := 1; i < len(fits); i++ {
		if fits[i].KS < fits[i-1].KS {
			t.Error("fits not sorted by KS")
		}
	}
	// The winning fit should be decent, and exponential (or Weibull with
	// shape≈1, which is the same family) should be near the top.
	if fits[0].KS > 0.05 {
		t.Errorf("best fit KS = %v (%s)", fits[0].KS, fits[0].Name)
	}
}

func TestFitTooFewSamples(t *testing.T) {
	h := NewHistogram(1)
	h.Add(1)
	if _, err := FitShiftedLogNormal(h); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitShiftedExp(h); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitWeibull(h); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v", err)
	}
}

func TestKSDistanceSelfIsSmall(t *testing.T) {
	// KS of a histogram against a perfect analytic match should be small;
	// against a shifted copy it should be large.
	d := Uniform{Lo: 0, Hi: 1}
	h := histFrom(d, 5, 50000, 0.01)
	if ks := KSDistance(h, d); ks > 0.03 {
		t.Errorf("self KS = %v", ks)
	}
	far := Uniform{Lo: 5, Hi: 6}
	if ks := KSDistance(h, far); ks < 0.9 {
		t.Errorf("disjoint KS = %v, want ~1", ks)
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := linearRegression(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("slope=%v intercept=%v", slope, intercept)
	}
	// Degenerate: all x equal.
	s, _ := linearRegression([]float64{2, 2}, []float64{1, 5})
	if !math.IsNaN(s) {
		t.Errorf("degenerate regression slope = %v, want NaN", s)
	}
}
