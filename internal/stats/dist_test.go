package stats

import (
	"math"
	"testing"
)

func sampleMean(s Sampler, r Rand, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += s.Sample(r)
	}
	return total / float64(n)
}

func TestConstant(t *testing.T) {
	c := Constant(42)
	r := newXorRand(1)
	if c.Sample(r) != 42 || c.Mean() != 42 || c.MinBound() != 42 {
		t.Error("constant sampler broken")
	}
	if c.CDF(41.9) != 0 || c.CDF(42) != 1 {
		t.Error("constant CDF broken")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	r := newXorRand(2)
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	if u.Mean() != 4 {
		t.Errorf("Mean = %v", u.Mean())
	}
	if got := sampleMean(u, r, 50000); math.Abs(got-4) > 0.05 {
		t.Errorf("sample mean = %v", got)
	}
	if u.CDF(2) != 0 || u.CDF(6) != 1 || u.CDF(4) != 0.5 {
		t.Error("uniform CDF broken")
	}
}

func TestShiftedLogNormal(t *testing.T) {
	d := ShiftedLogNormal{Shift: 1e-4, Mu: math.Log(5e-4), Sigma: 0.5}
	r := newXorRand(3)
	for i := 0; i < 1000; i++ {
		if v := d.Sample(r); v <= d.Shift {
			t.Fatalf("sample %v at or below shift", v)
		}
	}
	if got := sampleMean(d, r, 200000); !almostEqual(got, d.Mean(), 0.02) {
		t.Errorf("sample mean %v vs analytic %v", got, d.Mean())
	}
	// CDF sanity: median of lognormal part at shift+exp(mu).
	if got := d.CDF(d.Shift + 5e-4); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF at median = %v", got)
	}
	if d.CDF(d.Shift) != 0 {
		t.Error("CDF at shift should be 0")
	}
}

func TestShiftedExp(t *testing.T) {
	d := ShiftedExp{Shift: 2, Scale: 3}
	r := newXorRand(4)
	if got := sampleMean(d, r, 200000); !almostEqual(got, 5, 0.02) {
		t.Errorf("sample mean %v, want 5", got)
	}
	if got := d.CDF(2 + 3*math.Ln2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF at median = %v", got)
	}
}

func TestWeibull(t *testing.T) {
	d := Weibull{Shift: 1, Shape: 2, Scale: 4}
	r := newXorRand(5)
	if got := sampleMean(d, r, 200000); !almostEqual(got, d.Mean(), 0.02) {
		t.Errorf("sample mean %v vs analytic %v", got, d.Mean())
	}
	// At x = shift+scale, CDF = 1 - 1/e regardless of shape.
	if got := d.CDF(5); math.Abs(got-(1-1/math.E)) > 1e-9 {
		t.Errorf("CDF at scale point = %v", got)
	}
	// Shape 1 degenerates to exponential.
	w1 := Weibull{Shift: 0, Shape: 1, Scale: 2}
	e1 := ShiftedExp{Shift: 0, Scale: 2}
	for x := 0.5; x < 10; x += 0.5 {
		if math.Abs(w1.CDF(x)-e1.CDF(x)) > 1e-12 {
			t.Fatalf("Weibull(k=1) != Exp at %v", x)
		}
	}
}

func TestMixtureRTOOutliers(t *testing.T) {
	body := ShiftedLogNormal{Shift: 100e-6, Mu: math.Log(50e-6), Sigma: 0.4}
	rto := Uniform{Lo: 0.2, Hi: 0.21} // 200ms retransmission timeout spike
	m, err := NewMixture([]Sampler{body, rto}, []float64{0.999, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	r := newXorRand(6)
	n := 200000
	outliers := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) > 0.1 {
			outliers++
		}
	}
	frac := float64(outliers) / float64(n)
	if math.Abs(frac-0.001) > 0.0005 {
		t.Errorf("outlier fraction = %v, want ~0.001", frac)
	}
	// Mixture mean is dominated by the rare but huge RTO component.
	wantMean := 0.999*body.Mean() + 0.001*rto.Mean()
	if !almostEqual(m.Mean(), wantMean, 1e-9) {
		t.Errorf("Mean = %v, want %v", m.Mean(), wantMean)
	}
	if m.MinBound() != body.MinBound() {
		t.Errorf("MinBound = %v", m.MinBound())
	}
	if got := m.CDF(0.1); math.Abs(got-0.999) > 1e-6 {
		t.Errorf("CDF(0.1) = %v", got)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Sampler{Constant(1)}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := NewMixture([]Sampler{Constant(1)}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Sampler{Constant(1)}, []float64{0}); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Base: Constant(10), Factor: 1.5}
	r := newXorRand(7)
	if s.Sample(r) != 15 || s.Mean() != 15 || s.MinBound() != 15 {
		t.Error("scaled sampler broken")
	}
}

func TestSamplerInterfaces(t *testing.T) {
	// Every distribution with an analytic CDF must satisfy Dist.
	for _, d := range []Dist{
		Constant(1),
		Uniform{0, 1},
		ShiftedLogNormal{0, 0, 1},
		ShiftedExp{0, 1},
		Weibull{0, 2, 1},
	} {
		prev := -0.1
		for x := -1.0; x < 10; x += 0.25 {
			c := d.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				t.Fatalf("%T: CDF not monotone in [0,1] at %v", d, x)
			}
			prev = c
		}
	}
}
