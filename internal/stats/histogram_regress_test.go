package stats

import (
	"math"
	"sync"
	"testing"
)

// TestSampleClampAtUpperEdge pins the out-of-range fix: a uniform draw at
// or just below 1 must select the last bin, never index past the
// cumulative table. Rand's contract is [0,1), but generators have shipped
// with off-by-one-ulp bugs that return exactly 1.0, and before the clamp
// that panicked with an index out of range inside Sample.
func TestSampleClampAtUpperEdge(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < 3; i++ {
		h.Add(float64(i) + 0.5)
	}

	// Draw 1: bin selection (the overflowing value). Draw 2: intra-bin
	// jitter at 0, so the result is exactly the last bin's lower edge.
	r := &testRand{u: []float64{1.0, 0}}
	got := h.Sample(r)
	if got != 2 {
		t.Errorf("Sample with Float64()=1.0 = %v, want 2 (last bin's lower edge)", got)
	}

	// The largest in-contract value must land in the last bin too.
	r = &testRand{u: []float64{math.Nextafter(1, 0), 0}}
	got = h.Sample(r)
	if got != 2 {
		t.Errorf("Sample with Float64()=1-ulp = %v, want 2", got)
	}
}

// TestSampleClampSingleObservation: the degenerate one-count histogram is
// the easiest place for the clamp to go wrong (N-1 == 0).
func TestSampleClampSingleObservation(t *testing.T) {
	h := NewHistogram(1)
	h.Add(7.25)
	r := &testRand{u: []float64{1.0, 0.25}}
	if got := h.Sample(r); got != 7.25 {
		t.Errorf("Sample = %v, want 7.25", got)
	}
}

// TestFreezeEmptyHistogramConcurrent pins the empty-rebuild fix: Freeze
// on a histogram with no observations must still leave the memo built, so
// later read-only queries never mutate shared state. Run with -race; the
// pre-fix code re-entered rebuild() (a write) on every query.
func TestFreezeEmptyHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1e-6)
	h.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if got := h.Quantile(0.5); got != 0 {
					t.Errorf("Quantile(0.5) on empty = %v, want 0", got)
				}
				if got := h.CDF(1); got != 0 {
					t.Errorf("CDF(1) on empty = %v, want 0", got)
				}
				if bins := h.Bins(); len(bins) != 0 {
					t.Errorf("Bins() on empty has %d entries", len(bins))
				}
				_ = h.Mode()
			}
		}()
	}
	wg.Wait()
}

// TestFrozenQueriesZeroAlloc guards the fast paths: once frozen, Sample
// and Quantile run without heap allocations (no sort.Search closures, no
// memo rebuilds).
func TestFrozenQueriesZeroAlloc(t *testing.T) {
	h := NewHistogram(1e-6)
	rng := newXorRand(42)
	for i := 0; i < 10000; i++ {
		h.Add(50e-6 + 10e-6*rng.NormFloat64())
	}
	h.Freeze()
	allocs := testing.AllocsPerRun(200, func() {
		h.Sample(rng)
		h.Quantile(0.99)
		h.CDF(55e-6)
	})
	if allocs != 0 {
		t.Errorf("frozen Sample/Quantile/CDF allocate %v objects/op, want 0", allocs)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(1e-6)
	rng := newXorRand(42)
	// Pre-touch the typical bin range so map growth settles.
	for i := 0; i < 1000; i++ {
		h.Add(50e-6 + 10e-6*rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(50e-6 + 10e-6*rng.NormFloat64())
	}
}

func BenchmarkHistogramSample(b *testing.B) {
	h := NewHistogram(1e-6)
	rng := newXorRand(42)
	for i := 0; i < 10000; i++ {
		h.Add(50e-6 + 10e-6*rng.NormFloat64())
	}
	h.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sample(rng)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram(1e-6)
	rng := newXorRand(42)
	for i := 0; i < 10000; i++ {
		h.Add(50e-6 + 10e-6*rng.NormFloat64())
	}
	h.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
