package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Histogram records a probability distribution as fixed-width bins, the
// form MPIBench uses for its performance PDFs. Bins are sparse (a map
// keyed by bin index), so long retransmission-timeout tails — bins far
// from the body of the distribution — cost one map entry each rather than
// a huge dense array.
type Histogram struct {
	binWidth float64
	bins     map[int]uint64
	sum      Summary

	// memoised cumulative table for Quantile/Sample; rebuilt lazily.
	cumBins   []binCount
	cumTotals []uint64
	dirty     bool
}

type binCount struct {
	index int
	count uint64
}

// Bin is one bar of the histogram: observations with Lo <= x < Hi.
type Bin struct {
	Lo, Hi float64
	Count  uint64
	// Density is the probability mass of the bin divided by its width,
	// i.e. the height of the PDF bar.
	Density float64
}

// NewHistogram creates a histogram with the given bin width. The paper
// attributes PEVPM's residual prediction error to bin granularity, so the
// width is the caller's choice; bench timings typically use 1–10 µs.
func NewHistogram(binWidth float64) *Histogram {
	if binWidth <= 0 || math.IsNaN(binWidth) || math.IsInf(binWidth, 0) {
		panic(fmt.Sprintf("stats: invalid bin width %v", binWidth))
	}
	return &Histogram{binWidth: binWidth, bins: make(map[int]uint64)}
}

// BinWidth returns the histogram's bin width.
func (h *Histogram) BinWidth() float64 { return h.binWidth }

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("stats: invalid observation %v", x))
	}
	h.bins[h.binIndex(x)]++
	h.sum.Add(x)
	h.dirty = true
}

func (h *Histogram) binIndex(x float64) int {
	return int(math.Floor(x / h.binWidth))
}

// Merge adds every observation of o into h, approximating each of o's
// observations by its bin midpoint when bin widths differ.
func (h *Histogram) Merge(o *Histogram) {
	if o.binWidth == h.binWidth {
		for idx, c := range o.bins {
			h.bins[idx] += c
		}
	} else {
		//detlint:ordered -- commutative uint64 sums into bins; binIndex is a pure function of the bin midpoint
		for idx, c := range o.bins {
			mid := (float64(idx) + 0.5) * o.binWidth
			h.bins[h.binIndex(mid)] += c
		}
	}
	h.sum.Merge(o.sum)
	h.dirty = true
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.sum.N }

// Mean returns the exact (not binned) mean of the observations.
func (h *Histogram) Mean() float64 { return h.sum.Mean }

// Std returns the exact standard deviation of the observations.
func (h *Histogram) Std() float64 { return h.sum.Std() }

// Min returns the smallest observation (the contention-free bound in the
// paper's terminology). Zero if empty.
func (h *Histogram) Min() float64 {
	if h.sum.N == 0 {
		return 0
	}
	return h.sum.Min
}

// Max returns the largest observation. Zero if empty.
func (h *Histogram) Max() float64 {
	if h.sum.N == 0 {
		return 0
	}
	return h.sum.Max
}

// SummaryStats returns a copy of the streaming summary.
func (h *Histogram) SummaryStats() Summary { return h.sum }

func (h *Histogram) rebuild() {
	if !h.dirty && h.cumBins != nil {
		return
	}
	// The memo must end up non-nil even for an empty histogram, or Freeze's
	// "no later query mutates the histogram" guarantee breaks: nil[:0] is
	// still nil, so every Quantile/CDF/Bins call would re-enter rebuild and
	// race under concurrent sampling.
	if h.cumBins == nil {
		h.cumBins = make([]binCount, 0, len(h.bins))
	}
	h.cumBins = h.cumBins[:0]
	for idx, c := range h.bins {
		h.cumBins = append(h.cumBins, binCount{idx, c})
	}
	sort.Slice(h.cumBins, func(i, j int) bool { return h.cumBins[i].index < h.cumBins[j].index })
	if h.cumTotals == nil {
		h.cumTotals = make([]uint64, 0, len(h.cumBins))
	}
	h.cumTotals = h.cumTotals[:0]
	var total uint64
	for _, bc := range h.cumBins {
		total += bc.count
		h.cumTotals = append(h.cumTotals, total)
	}
	h.dirty = false
}

// Freeze builds the memoised cumulative table eagerly so that
// subsequent read-only queries (Quantile, Sample, CDF, Bins, Mode) never
// mutate the histogram. A frozen histogram is safe for concurrent
// sampling from many goroutines — the property parallel PEVPM
// evaluations rely on — provided nothing Adds or Merges observations
// afterwards (which would dirty it again).
func (h *Histogram) Freeze() { h.rebuild() }

// Bins returns the non-empty bins in ascending order with densities
// normalised so the PDF integrates to one.
func (h *Histogram) Bins() []Bin {
	h.rebuild()
	out := make([]Bin, len(h.cumBins))
	n := float64(h.sum.N)
	for i, bc := range h.cumBins {
		out[i] = Bin{
			Lo:      float64(bc.index) * h.binWidth,
			Hi:      float64(bc.index+1) * h.binWidth,
			Count:   bc.count,
			Density: float64(bc.count) / (n * h.binWidth),
		}
	}
	return out
}

// Mode returns the midpoint of the fullest bin — the peak of the PDF,
// which the paper observes sits very close to the average.
func (h *Histogram) Mode() float64 {
	h.rebuild()
	var best binCount
	for _, bc := range h.cumBins {
		if bc.count > best.count {
			best = bc
		}
	}
	return (float64(best.index) + 0.5) * h.binWidth
}

// Quantile returns the value below which fraction q of the mass lies,
// interpolating linearly within the containing bin. q is clamped to [0,1].
//
//detlint:hotpath
func (h *Histogram) Quantile(q float64) float64 {
	if h.sum.N == 0 {
		return 0
	}
	if q <= 0 {
		return h.sum.Min
	}
	if q >= 1 {
		return h.sum.Max
	}
	h.rebuild()
	target := q * float64(h.sum.N)
	// Lower bound (first cumulative total >= target), written out so the
	// frozen read path performs zero allocations (no sort.Search closure).
	lo, hi := 0, len(h.cumTotals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if float64(h.cumTotals[mid]) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bc := h.cumBins[lo]
	i := lo
	var below uint64
	if i > 0 {
		below = h.cumTotals[i-1]
	}
	frac := (target - float64(below)) / float64(bc.count)
	return (float64(bc.index) + frac) * h.binWidth
}

// CDF returns the fraction of observations strictly below x, treating
// mass as spread uniformly within each bin.
func (h *Histogram) CDF(x float64) float64 {
	if h.sum.N == 0 {
		return 0
	}
	h.rebuild()
	xi := h.binIndex(x)
	lo, hi := 0, len(h.cumBins)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.cumBins[mid].index >= xi {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	var below uint64
	if i > 0 {
		below = h.cumTotals[i-1]
	}
	total := float64(below)
	if i < len(h.cumBins) && h.cumBins[i].index == xi {
		frac := x/h.binWidth - float64(xi)
		total += frac * float64(h.cumBins[i].count)
	}
	return total / float64(h.sum.N)
}

// Sample draws an observation from the histogram: a bin is chosen with
// probability proportional to its count, then a point is drawn uniformly
// within the bin. The intra-bin jitter keeps PEVPM's Monte-Carlo draws
// continuous rather than quantised to bin midpoints.
//
//detlint:hotpath
func (h *Histogram) Sample(r Rand) float64 {
	if h.sum.N == 0 {
		panic("stats: sampling from empty histogram")
	}
	h.rebuild()
	target := uint64(r.Float64() * float64(h.sum.N))
	if target >= h.sum.N {
		// Rand.Float64 contracts to [0,1), but a value rounding to 1.0 (or
		// an out-of-contract implementation returning exactly 1) would push
		// the search past the last bin and index out of range. Clamp to the
		// final observation instead of panicking.
		target = h.sum.N - 1
	}
	// Upper bound: first cumulative total > target, allocation-free.
	lo, hi := 0, len(h.cumTotals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.cumTotals[mid] > target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bc := h.cumBins[lo]
	return (float64(bc.index) + r.Float64()) * h.binWidth
}

// Rebin returns a new histogram with a different bin width containing the
// same observations (approximated at bin midpoints).
func (h *Histogram) Rebin(binWidth float64) *Histogram {
	out := NewHistogram(binWidth)
	out.Merge(h)
	return out
}

// histogramJSON is the serialised form used in MPIBench result files.
type histogramJSON struct {
	BinWidth float64  `json:"bin_width"`
	Summary  Summary  `json:"summary"`
	Indices  []int    `json:"indices"`
	Counts   []uint64 `json:"counts"`
}

// MarshalJSON encodes the histogram with bins in ascending order.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	h.rebuild()
	j := histogramJSON{BinWidth: h.binWidth, Summary: h.sum}
	for _, bc := range h.cumBins {
		j.Indices = append(j.Indices, bc.index)
		j.Counts = append(j.Counts, bc.count)
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a histogram produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.BinWidth <= 0 {
		return errors.New("stats: histogram JSON has non-positive bin width")
	}
	if len(j.Indices) != len(j.Counts) {
		return errors.New("stats: histogram JSON indices/counts length mismatch")
	}
	h.binWidth = j.BinWidth
	h.sum = j.Summary
	h.bins = make(map[int]uint64, len(j.Indices))
	for i, idx := range j.Indices {
		h.bins[idx] = j.Counts[i]
	}
	h.dirty = true
	return nil
}
