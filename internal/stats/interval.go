package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file is the experimental-design layer's estimator toolbox:
// confidence intervals on means and quantiles, outlier-robust location
// and scale estimators, and a stationarity-drift statistic. "MPI
// Benchmarking Revisited" (Hunold & Carpen-Amarie) catalogues how
// benchmark results reported as bare means of N repetitions mislead;
// everything here exists so mpibench results can carry their own
// uncertainty and the BENCH.json regression gate can test interval
// overlap instead of crude percentage bands.
//
// Nothing in this file draws randomness of its own: bootstrap
// resampling goes through the Rand interface, so callers seed it from
// sim.SubSeed and interval output is bit-identical at any worker count.

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64 `json:"point"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"` // confidence level, e.g. 0.95
	N     uint64  `json:"n"`     // observations behind the estimate
}

// HalfWidth returns half the interval's width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// RelHalfWidth returns the half-width relative to the magnitude of the
// point estimate — the quantity adaptive stopping rules drive below a
// target. It is +Inf when the point estimate is zero (no relative
// precision is achievable against a zero target).
func (iv Interval) RelHalfWidth() float64 {
	if iv.Point == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth() / math.Abs(iv.Point)
}

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// String formats the interval compactly for logs.
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g [%.6g, %.6g] @%g%%", iv.Point, iv.Lo, iv.Hi, iv.Level*100)
}

// Overlap reports whether two intervals share any point. Disjoint
// intervals are the CI-overlap regression gate's failure condition:
// when the baseline's and the current run's intervals do not even
// touch, the difference is larger than both measurements' noise.
func Overlap(a, b Interval) bool { return a.Lo <= b.Hi && b.Lo <= a.Hi }

// invNorm returns the standard normal quantile function Φ⁻¹(p) using
// Acklam's rational approximation (relative error < 1.15e-9), which is
// far more precision than any benchmark CI needs.
func invNorm(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	const (
		a1    = -3.969683028665376e+01
		a2    = 2.209460984245205e+02
		a3    = -2.759285104469687e+02
		a4    = 1.383577518672690e+02
		a5    = -3.066479806614716e+01
		a6    = 2.506628277459239e+00
		b1    = -5.447609879822406e+01
		b2    = 1.615858368580409e+02
		b3    = -1.556989798598866e+02
		b4    = 6.680131188771972e+01
		b5    = -1.328068155288572e+01
		c1    = -7.784894002430293e-03
		c2    = -3.223964580411365e-01
		c3    = -2.400758277161838e+00
		c4    = -2.549732539343734e+00
		c5    = 4.374664141464968e+00
		c6    = 2.938163982698783e+00
		d1    = 7.784695709041462e-03
		d2    = 3.224671290700398e-01
		d3    = 2.445134137142996e+00
		d4    = 3.754408661907416e+00
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}

// tQuantile approximates the Student-t quantile with nu degrees of
// freedom via the Cornish-Fisher expansion around the normal quantile.
// For nu >= 3 the approximation is within ~1% of the exact value, which
// is ample for CI half-widths; for nu <= 2 it is clamped to the exact
// values at the common 95% level's neighbourhood by widening toward the
// known heavy tails.
func tQuantile(p float64, nu int) float64 {
	z := invNorm(p)
	if nu <= 0 {
		return z
	}
	n := float64(nu)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	t := z +
		(z3+z)/(4*n) +
		(5*z5+16*z3+3*z)/(96*n*n) +
		(3*z7+19*z5+17*z3-15*z)/(384*n*n*n)
	if nu == 1 {
		// Cauchy tails: the expansion underestimates badly; use the
		// exact t₁ quantile tan(π(p-1/2)).
		return math.Tan(math.Pi * (p - 0.5))
	}
	if nu == 2 {
		// Exact t₂ quantile: z has a closed form.
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}
	return t
}

// NormalCI returns the normal-theory confidence interval on the mean of
// the summarised series: mean ± z·s/√n. Use StudentCI when n is small.
func NormalCI(s Summary, level float64) Interval {
	return meanCI(s, level, invNorm((1+level)/2))
}

// StudentCI returns the Student-t confidence interval on the mean —
// the right choice for the handful-of-replications cells the benchmark
// ledger stores (n of 3–10), where the normal interval is too narrow.
func StudentCI(s Summary, level float64) Interval {
	return meanCI(s, level, tQuantile((1+level)/2, int(s.N)-1))
}

func meanCI(s Summary, level, crit float64) Interval {
	iv := Interval{Point: s.Mean, Lo: s.Mean, Hi: s.Mean, Level: level, N: s.N}
	if s.N < 2 {
		return iv
	}
	// Sample (n-1) variance: CI machinery estimates, it does not describe.
	se := math.Sqrt(s.M2 / float64(s.N-1) / float64(s.N))
	iv.Lo = s.Mean - crit*se
	iv.Hi = s.Mean + crit*se
	return iv
}

// QuantileSorted returns the q-quantile of an ascending-sorted sample
// using linear interpolation between order statistics (type 7, the R
// and NumPy default). It panics on an empty sample.
//
//detlint:hotpath
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	h := q * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median returns the middle of an ascending-sorted sample.
//
//detlint:hotpath
func Median(sorted []float64) float64 { return QuantileSorted(sorted, 0.5) }

// TrimmedMean returns the mean of an ascending-sorted sample after
// discarding fraction trim from each end — a location estimate that a
// few retransmission-timeout outliers cannot drag. trim is clamped to
// [0, 0.5); trim = 0.5 would leave nothing, so it degrades to the
// median.
//
//detlint:hotpath
func TrimmedMean(sorted []float64, trim float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: trimmed mean of empty sample")
	}
	if trim < 0 {
		trim = 0
	}
	if trim >= 0.5 {
		return Median(sorted)
	}
	cut := int(trim * float64(n))
	if 2*cut >= n {
		return Median(sorted)
	}
	sum := 0.0
	for _, x := range sorted[cut : n-cut] {
		sum += x
	}
	return sum / float64(n-2*cut)
}

// MAD returns the median absolute deviation from the median of an
// ascending-sorted sample — the robust scale companion to Median.
// scratch must have capacity for len(sorted) values and is overwritten;
// pass a reused buffer to keep the call allocation-free. Multiply by
// 1.4826 for a consistent estimate of a normal σ.
//
//detlint:hotpath
func MAD(sorted []float64, scratch []float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: MAD of empty sample")
	}
	med := Median(sorted)
	scratch = scratch[:0]
	for _, x := range sorted {
		scratch = append(scratch, math.Abs(x-med))
	}
	sort.Float64s(scratch)
	return Median(scratch)
}

// Bootstrap computes percentile-bootstrap confidence intervals. The
// struct owns its scratch buffers, so after the first call on a given
// sample size further CIs allocate nothing — the property the adaptive
// stopping loop's per-batch re-checks rely on. It is not safe for
// concurrent use; give each goroutine its own.
type Bootstrap struct {
	resamples int
	sorted    []float64 // ascending copy of the input sample
	resample  []float64 // one bootstrap draw
	stat      []float64 // per-resample statistic values
}

// statKind selects the closure-free statistic the hot resampling loop
// computes; the generic CI entry point takes an arbitrary func instead.
type statKind int

const (
	statMean statKind = iota
	statQuantile
	statTrimmed
)

// NewBootstrap returns a Bootstrap drawing the given number of
// resamples per interval (minimum 50; 200 is a sound default for 95%
// percentile intervals on benchmark-sized samples).
func NewBootstrap(resamples int) *Bootstrap {
	if resamples < 50 {
		resamples = 50
	}
	return &Bootstrap{resamples: resamples}
}

// Resamples returns the configured resample count.
func (b *Bootstrap) Resamples() int { return b.resamples }

// MeanCI returns the percentile-bootstrap interval on the sample mean.
func (b *Bootstrap) MeanCI(xs []float64, level float64, r Rand) Interval {
	return b.run(xs, level, statMean, 0, r)
}

// QuantileCI returns the percentile-bootstrap interval on the
// q-quantile — the median for q = 0.5. Quantile CIs have no useful
// closed form for arbitrary distributions, which is exactly why the
// bootstrap earns its keep here.
func (b *Bootstrap) QuantileCI(xs []float64, q, level float64, r Rand) Interval {
	return b.run(xs, level, statQuantile, q, r)
}

// TrimmedMeanCI returns the percentile-bootstrap interval on the
// trimmed mean with fraction trim cut from each tail.
func (b *Bootstrap) TrimmedMeanCI(xs []float64, trim, level float64, r Rand) Interval {
	return b.run(xs, level, statTrimmed, trim, r)
}

// CI returns the percentile-bootstrap interval for an arbitrary
// statistic. stat receives an ascending-sorted sample it must not
// modify or retain. Unlike the fixed-statistic methods, the closure
// call may allocate; keep hot loops on MeanCI/QuantileCI/TrimmedMeanCI.
func (b *Bootstrap) CI(xs []float64, level float64, stat func(sorted []float64) float64, r Rand) Interval {
	b.prepare(xs)
	point := stat(b.sorted)
	for k := 0; k < b.resamples; k++ {
		b.draw(r)
		b.stat[k] = stat(b.resample)
	}
	return b.finish(point, level, uint64(len(xs)))
}

// run is the closure-free hot path shared by the fixed statistics.
//
//detlint:hotpath
func (b *Bootstrap) run(xs []float64, level float64, kind statKind, p float64, r Rand) Interval {
	b.prepare(xs)
	point := statOf(b.sorted, kind, p)
	for k := 0; k < b.resamples; k++ {
		b.draw(r)
		b.stat[k] = statOf(b.resample, kind, p)
	}
	return b.finish(point, level, uint64(len(xs)))
}

// prepare sizes the scratch buffers and sorts a copy of the input.
func (b *Bootstrap) prepare(xs []float64) {
	if len(xs) == 0 {
		panic("stats: bootstrap over empty sample")
	}
	if cap(b.sorted) < len(xs) {
		b.sorted = make([]float64, 0, len(xs))
		b.resample = make([]float64, 0, len(xs))
	}
	if cap(b.stat) < b.resamples {
		b.stat = make([]float64, b.resamples)
	}
	b.sorted = append(b.sorted[:0], xs...)
	sort.Float64s(b.sorted)
	b.stat = b.stat[:b.resamples]
}

// draw fills b.resample with one bootstrap draw (sampling with
// replacement from the sorted sample) and sorts it.
//
//detlint:hotpath
func (b *Bootstrap) draw(r Rand) {
	n := len(b.sorted)
	b.resample = b.resample[:n]
	for i := range b.resample {
		// Index via Float64 rather than an Intn method so any Rand
		// implementation (sim.RNG included) works; the bias is < 2⁻53.
		b.resample[i] = b.sorted[int(r.Float64()*float64(n))]
	}
	sort.Float64s(b.resample)
}

// finish turns the resample statistics into a percentile interval.
func (b *Bootstrap) finish(point, level float64, n uint64) Interval {
	sort.Float64s(b.stat)
	alpha := (1 - level) / 2
	return Interval{
		Point: point,
		Lo:    QuantileSorted(b.stat, alpha),
		Hi:    QuantileSorted(b.stat, 1-alpha),
		Level: level,
		N:     n,
	}
}

// statOf computes the selected statistic over an ascending-sorted
// sample without going through a function value.
//
//detlint:hotpath
func statOf(sorted []float64, kind statKind, p float64) float64 {
	switch kind {
	case statQuantile:
		return QuantileSorted(sorted, p)
	case statTrimmed:
		return TrimmedMean(sorted, p)
	default:
		sum := 0.0
		for _, x := range sorted {
			sum += x
		}
		return sum / float64(len(sorted))
	}
}

// DriftStat returns the Welch t-statistic between the first and second
// half of a series — the warmup-stationarity check. A benchmark whose
// warmup phase was long enough produces a stationary measured series;
// when caches, routes or congestion state are still settling, the early
// half's mean differs from the late half's by more than the sampling
// noise explains and the statistic grows without bound. Values below
// ~4 are unremarkable for autocorrelated benchmark series; a
// deliberately drifting series reaches the tens. Series shorter than 8
// observations return 0 (too little data to call anything drift).
func DriftStat(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return 0
	}
	var a, b Summary
	half := n / 2
	for _, x := range xs[:half] {
		a.Add(x)
	}
	for _, x := range xs[half:] {
		b.Add(x)
	}
	// Welch standard error from sample variances.
	sea := a.M2 / float64(a.N-1) / float64(a.N)
	seb := b.M2 / float64(b.N-1) / float64(b.N)
	se := math.Sqrt(sea + seb)
	if se == 0 {
		if a.Mean == b.Mean {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(b.Mean-a.Mean) / se
}
