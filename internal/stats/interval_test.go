package stats

import (
	"math"
	"sort"
	"testing"
)

func TestIntervalGeometry(t *testing.T) {
	iv := Interval{Point: 10, Lo: 8, Hi: 14, Level: 0.95, N: 50}
	if got := iv.HalfWidth(); got != 3 {
		t.Errorf("HalfWidth = %v, want 3", got)
	}
	if got := iv.RelHalfWidth(); got != 0.3 {
		t.Errorf("RelHalfWidth = %v, want 0.3", got)
	}
	if !iv.Contains(8) || !iv.Contains(14) || iv.Contains(7.99) {
		t.Error("Contains bounds wrong")
	}
	zero := Interval{Point: 0, Lo: -1, Hi: 1}
	if !math.IsInf(zero.RelHalfWidth(), 1) {
		t.Error("RelHalfWidth of zero point should be +Inf")
	}
}

func TestOverlap(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	for _, tc := range []struct {
		b    Interval
		want bool
	}{
		{Interval{Lo: 2, Hi: 4}, true}, // partial overlap
		{Interval{Lo: 3, Hi: 5}, true}, // touching endpoints count
		{Interval{Lo: 3.01, Hi: 5}, false},
		{Interval{Lo: 0, Hi: 0.5}, false},
		{Interval{Lo: 0, Hi: 10}, true}, // containment
	} {
		if got := Overlap(a, tc.b); got != tc.want {
			t.Errorf("Overlap(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := Overlap(tc.b, a); got != tc.want {
			t.Errorf("Overlap is not symmetric for %v", tc.b)
		}
	}
}

// TestInvNorm pins the normal quantile against textbook values.
func TestInvNorm(t *testing.T) {
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134, 0.99998}, // Φ(1) ≈ 0.84134
		{0.001, -3.090232},
	} {
		if got := invNorm(tc.p); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("invNorm(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsInf(invNorm(0), -1) || !math.IsInf(invNorm(1), 1) {
		t.Error("invNorm endpoints should be infinite")
	}
	if !math.IsNaN(invNorm(-0.1)) || !math.IsNaN(invNorm(1.1)) {
		t.Error("invNorm outside [0,1] should be NaN")
	}
}

// TestTQuantile checks the Student-t critical values small-n mean CIs
// hinge on (exact closed forms at ν=1,2; tables above).
func TestTQuantile(t *testing.T) {
	for _, tc := range []struct {
		nu   int
		want float64 // t_{0.975, nu}
		tol  float64
	}{
		{1, 12.706, 0.01},
		{2, 4.303, 0.01},
		{4, 2.776, 0.03},
		{9, 2.262, 0.01},
		{29, 2.045, 0.01},
		{200, 1.972, 0.01},
	} {
		if got := tQuantile(0.975, tc.nu); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("tQuantile(0.975, %d) = %v, want %v", tc.nu, got, tc.want)
		}
	}
}

func TestMeanCIs(t *testing.T) {
	var s Summary
	for _, x := range []float64{9, 10, 11, 10, 9, 11, 10, 10} {
		s.Add(x)
	}
	n := NormalCI(s, 0.95)
	st := StudentCI(s, 0.95)
	if n.Point != s.Mean || st.Point != s.Mean {
		t.Error("CI point should be the mean")
	}
	if !(n.Lo < s.Mean && s.Mean < n.Hi) {
		t.Errorf("normal CI %v does not bracket the mean", n)
	}
	// t critical value > z critical value, so the Student interval is wider.
	if st.HalfWidth() <= n.HalfWidth() {
		t.Errorf("Student CI (%v) should be wider than normal CI (%v)", st, n)
	}
	// A single observation yields a degenerate interval, not NaN.
	var one Summary
	one.Add(5)
	iv := StudentCI(one, 0.95)
	if iv.Lo != 5 || iv.Hi != 5 || iv.Point != 5 {
		t.Errorf("single-sample CI = %v, want degenerate at 5", iv)
	}
}

func TestQuantileSortedAndRobustEstimators(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := QuantileSorted(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := QuantileSorted(xs, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 5.5 {
		t.Errorf("median = %v, want 5.5", got)
	}
	if got := QuantileSorted(xs, 0.25); math.Abs(got-3.25) > 1e-12 {
		t.Errorf("q0.25 = %v, want 3.25 (type 7)", got)
	}

	// An enormous outlier moves the mean but not the robust estimators.
	out := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1e6}
	if got := Median(out); got != 5.5 {
		t.Errorf("median with outlier = %v, want 5.5", got)
	}
	if got := TrimmedMean(out, 0.1); got != 5.5 {
		t.Errorf("10%% trimmed mean with outlier = %v, want 5.5", got)
	}
	scratch := make([]float64, 0, len(out))
	if got := MAD(out, scratch); got != 2.5 {
		t.Errorf("MAD with outlier = %v, want 2.5", got)
	}
	// Degenerate trims fall back to the median rather than panicking.
	if got := TrimmedMean(xs, 0.5); got != 5.5 {
		t.Errorf("trim=0.5 = %v, want median", got)
	}
	if got := TrimmedMean(xs, -1); got != 5.5 {
		t.Errorf("negative trim = %v, want plain mean 5.5", got)
	}
}

func uniformSample(r Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	return xs
}

// TestBootstrapDeterminism: equal seeds must give bit-identical
// intervals — the property that keeps mpibench CI output byte-identical
// at any sweep worker count (each cell derives its Rand from
// sim.SubSeed, never from shared state).
func TestBootstrapDeterminism(t *testing.T) {
	run := func() Interval {
		r := newXorRand(42)
		xs := uniformSample(r, 60)
		b := NewBootstrap(200)
		return b.QuantileCI(xs, 0.5, 0.95, r)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed bootstrap intervals differ: %v vs %v", a, b)
	}
	// The input sample's order must not matter (resampling is from the
	// empirical distribution): a shuffled copy gives the same interval.
	r := newXorRand(42)
	xs := uniformSample(r, 60)
	shuffled := append([]float64(nil), xs...)
	sort.Float64s(shuffled)
	b1 := NewBootstrap(200).QuantileCI(xs, 0.5, 0.95, newXorRand(7))
	b2 := NewBootstrap(200).QuantileCI(shuffled, 0.5, 0.95, newXorRand(7))
	if b1 != b2 {
		t.Errorf("sample order changed the interval: %v vs %v", b1, b2)
	}
}

func TestBootstrapBracketsPoint(t *testing.T) {
	r := newXorRand(3)
	xs := uniformSample(r, 100)
	b := NewBootstrap(200)
	for _, iv := range []Interval{
		b.MeanCI(xs, 0.95, r),
		b.QuantileCI(xs, 0.5, 0.95, r),
		b.QuantileCI(xs, 0.9, 0.95, r),
		b.TrimmedMeanCI(xs, 0.1, 0.95, r),
	} {
		if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
			t.Errorf("interval %v does not bracket its point estimate", iv)
		}
		if iv.HalfWidth() <= 0 {
			t.Errorf("interval %v has no width", iv)
		}
		if iv.N != 100 || iv.Level != 0.95 {
			t.Errorf("interval %v metadata wrong", iv)
		}
	}
	// Narrower level, narrower interval.
	wide := b.QuantileCI(xs, 0.5, 0.99, newXorRand(9))
	narrow := b.QuantileCI(xs, 0.5, 0.80, newXorRand(9))
	if narrow.HalfWidth() >= wide.HalfWidth() {
		t.Errorf("80%% interval (%v) should be narrower than 99%% (%v)", narrow, wide)
	}
}

// TestBootstrapGenericCI exercises the arbitrary-statistic entry point.
func TestBootstrapGenericCI(t *testing.T) {
	r := newXorRand(11)
	xs := uniformSample(r, 80)
	b := NewBootstrap(200)
	iv := b.CI(xs, 0.95, func(sorted []float64) float64 {
		return sorted[len(sorted)-1] - sorted[0] // range
	}, r)
	if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
		t.Errorf("range CI %v does not bracket its point", iv)
	}
}

// TestBootstrapCoverage: over many independent trials drawing from a
// known distribution, ~95% of nominal-95% CIs must contain the true
// quantile. Exact coverage for the median of Uniform(0,1) at n=80 is a
// few points below nominal (percentile bootstrap is first-order
// accurate), so the acceptance band is generous but would still catch a
// broken estimator (coverage near 0 or an interval that ignores q).
func TestBootstrapCoverage(t *testing.T) {
	const (
		trials = 200
		n      = 80
		level  = 0.95
	)
	b := NewBootstrap(200)
	hitsMedian, hitsMean := 0, 0
	for trial := 0; trial < trials; trial++ {
		r := newXorRand(uint64(1000 + trial))
		xs := uniformSample(r, n)
		if b.QuantileCI(xs, 0.5, level, r).Contains(0.5) {
			hitsMedian++
		}
		if b.MeanCI(xs, level, r).Contains(0.5) {
			hitsMean++
		}
	}
	if cov := float64(hitsMedian) / trials; cov < 0.85 || cov > 0.999 {
		t.Errorf("median CI coverage = %.3f, want ≈0.95", cov)
	}
	if cov := float64(hitsMean) / trials; cov < 0.85 || cov > 0.999 {
		t.Errorf("mean CI coverage = %.3f, want ≈0.95", cov)
	}
}

// TestStudentCICoverage does the same for the normal-theory interval on
// the mean of a normal sample, where 95% is the exact answer.
func TestStudentCICoverage(t *testing.T) {
	const trials = 400
	hits := 0
	for trial := 0; trial < trials; trial++ {
		r := newXorRand(uint64(5000 + trial))
		var s Summary
		for i := 0; i < 10; i++ {
			s.Add(3 + 2*r.NormFloat64())
		}
		if StudentCI(s, 0.95).Contains(3) {
			hits++
		}
	}
	if cov := float64(hits) / trials; cov < 0.89 || cov > 0.99 {
		t.Errorf("Student CI coverage = %.3f, want ≈0.95", cov)
	}
}

// TestBootstrapZeroAlloc guards the detlint hotpath contract: once the
// scratch buffers are warm, computing CIs allocates nothing — the
// adaptive stopping loop re-checks after every batch and must not churn
// the heap.
func TestBootstrapZeroAlloc(t *testing.T) {
	r := newXorRand(17)
	xs := uniformSample(r, 100)
	b := NewBootstrap(100)
	b.QuantileCI(xs, 0.5, 0.95, r) // warm the buffers
	if allocs := testing.AllocsPerRun(20, func() {
		b.QuantileCI(xs, 0.5, 0.95, r)
	}); allocs != 0 {
		t.Errorf("warm QuantileCI allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		b.MeanCI(xs, 0.95, r)
	}); allocs != 0 {
		t.Errorf("warm MeanCI allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		b.TrimmedMeanCI(xs, 0.1, 0.95, r)
	}); allocs != 0 {
		t.Errorf("warm TrimmedMeanCI allocates %v/op, want 0", allocs)
	}

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	scratch := make([]float64, 0, len(sorted))
	if allocs := testing.AllocsPerRun(20, func() {
		Median(sorted)
		TrimmedMean(sorted, 0.1)
		MAD(sorted, scratch)
		QuantileSorted(sorted, 0.99)
	}); allocs != 0 {
		t.Errorf("warm estimators allocate %v/op, want 0", allocs)
	}
}

// TestDriftStat: a stationary series stays below the flag threshold, a
// deliberately drifting one (warmup leaking into measurement) is
// unmistakable.
func TestDriftStat(t *testing.T) {
	r := newXorRand(23)
	stationary := make([]float64, 200)
	for i := range stationary {
		stationary[i] = 100 + r.NormFloat64()
	}
	if d := DriftStat(stationary); d > 4 {
		t.Errorf("stationary series drift stat = %v, want < 4", d)
	}

	drifting := make([]float64, 200)
	for i := range drifting {
		// A 10% downward trend across the series — classic
		// insufficient-warmup shape.
		drifting[i] = 110 - 0.05*float64(i) + r.NormFloat64()
	}
	if d := DriftStat(drifting); d < 10 {
		t.Errorf("drifting series drift stat = %v, want > 10", d)
	}

	// Too-short and constant series report no drift.
	if d := DriftStat([]float64{1, 2, 3}); d != 0 {
		t.Errorf("short series drift = %v, want 0", d)
	}
	if d := DriftStat(make([]float64, 50)); d != 0 {
		t.Errorf("constant series drift = %v, want 0", d)
	}
	step := make([]float64, 50)
	for i := 25; i < 50; i++ {
		step[i] = 1
	}
	if d := DriftStat(step); !math.IsInf(d, 1) {
		t.Errorf("zero-variance step drift = %v, want +Inf", d)
	}
}
