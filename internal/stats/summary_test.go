package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Std() != 2 {
		t.Errorf("Std = %v", s.Std())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Var() != 0 || s.Std() != 0 {
		t.Error("empty summary should have zero variance")
	}
	var o Summary
	o.Add(3)
	s.Merge(o)
	if s.N != 1 || s.Mean != 3 || s.Min != 3 || s.Max != 3 {
		t.Errorf("merge into empty failed: %+v", s)
	}
	o.Merge(Summary{}) // merging empty is a no-op
	if o.N != 1 {
		t.Errorf("merge of empty changed N: %d", o.N)
	}
}

// Property: merging two summaries equals summarising the concatenation.
func TestSummaryMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			var out []float64
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, all Summary
		for _, v := range a {
			sa.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			sb.Add(v)
			all.Add(v)
		}
		sa.Merge(sb)
		if sa.N != all.N {
			return false
		}
		if sa.N == 0 {
			return true
		}
		return almostEqual(sa.Mean, all.Mean, 1e-9) &&
			math.Abs(sa.M2-all.M2) <= 1e-6*(1+math.Abs(all.M2)) &&
			sa.Min == all.Min && sa.Max == all.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if got := s.String(); got == "" {
		t.Error("String should be non-empty")
	}
}
