package stats

import (
	"fmt"
	"math"
)

// Sampler produces random draws from a distribution of operation times.
// PEVPM's match phase calls Sample once per simulated message.
type Sampler interface {
	Sample(r Rand) float64
	// Mean returns the expected value of the distribution.
	Mean() float64
	// MinBound returns the lower bound of the support — the paper's
	// contention-free minimum time.
	MinBound() float64
}

// Dist extends Sampler with an analytic CDF, which goodness-of-fit tests
// (KS distance) require.
type Dist interface {
	Sampler
	CDF(x float64) float64
}

// Constant always returns the same value; PEVPM's "average" and
// "minimum" prediction modes are Constant samplers.
type Constant float64

// Sample returns the constant.
func (c Constant) Sample(Rand) float64 { return float64(c) }

// Mean returns the constant.
func (c Constant) Mean() float64 { return float64(c) }

// MinBound returns the constant.
func (c Constant) MinBound() float64 { return float64(c) }

// CDF is a step at the constant.
func (c Constant) CDF(x float64) float64 {
	if x < float64(c) {
		return 0
	}
	return 1
}

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws from the interval.
func (u Uniform) Sample(r Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// MinBound returns the lower edge.
func (u Uniform) MinBound() float64 { return u.Lo }

// CDF of the uniform distribution.
func (u Uniform) CDF(x float64) float64 {
	if x <= u.Lo {
		return 0
	}
	if x >= u.Hi {
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// ShiftedLogNormal is Shift + LogNormal(Mu, Sigma): a bounded minimum
// with a smooth rise, a peak and a quickly decaying tail — the shape
// MPIBench observes for message-passing times under contention.
type ShiftedLogNormal struct {
	Shift, Mu, Sigma float64
}

// Sample draws from the distribution.
func (d ShiftedLogNormal) Sample(r Rand) float64 {
	return d.Shift + math.Exp(d.Mu+d.Sigma*r.NormFloat64())
}

// Mean returns Shift + exp(Mu + Sigma^2/2).
func (d ShiftedLogNormal) Mean() float64 {
	return d.Shift + math.Exp(d.Mu+d.Sigma*d.Sigma/2)
}

// MinBound returns the shift.
func (d ShiftedLogNormal) MinBound() float64 { return d.Shift }

// CDF of the shifted lognormal.
func (d ShiftedLogNormal) CDF(x float64) float64 {
	if x <= d.Shift {
		return 0
	}
	return 0.5 * (1 + math.Erf((math.Log(x-d.Shift)-d.Mu)/(d.Sigma*math.Sqrt2)))
}

// ShiftedExp is Shift + Exponential(mean Scale): the memoryless tail
// model, a reasonable fit for queueing-dominated delays.
type ShiftedExp struct {
	Shift, Scale float64
}

// Sample draws from the distribution.
func (d ShiftedExp) Sample(r Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Shift - d.Scale*math.Log(u)
}

// Mean returns Shift + Scale.
func (d ShiftedExp) Mean() float64 { return d.Shift + d.Scale }

// MinBound returns the shift.
func (d ShiftedExp) MinBound() float64 { return d.Shift }

// CDF of the shifted exponential.
func (d ShiftedExp) CDF(x float64) float64 {
	if x <= d.Shift {
		return 0
	}
	return 1 - math.Exp(-(x-d.Shift)/d.Scale)
}

// Weibull is Shift + Weibull(Shape k, Scale λ). With k>1 it has the
// rise-peak-decay shape; with k=1 it degenerates to the exponential.
type Weibull struct {
	Shift, Shape, Scale float64
}

// Sample draws by inverting the CDF.
func (d Weibull) Sample(r Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Shift + d.Scale*math.Pow(-math.Log(u), 1/d.Shape)
}

// Mean returns Shift + Scale·Γ(1 + 1/Shape).
func (d Weibull) Mean() float64 {
	return d.Shift + d.Scale*math.Gamma(1+1/d.Shape)
}

// MinBound returns the shift.
func (d Weibull) MinBound() float64 { return d.Shift }

// CDF of the shifted Weibull.
func (d Weibull) CDF(x float64) float64 {
	if x <= d.Shift {
		return 0
	}
	return 1 - math.Exp(-math.Pow((x-d.Shift)/d.Scale, d.Shape))
}

// Mixture draws from one of several components with fixed weights. Its
// main use is modelling retransmission-timeout outliers: a body
// distribution with weight ~0.999 plus a far-out RTO spike.
type Mixture struct {
	Components []Sampler
	Weights    []float64 // need not be normalised
}

// NewMixture validates and returns a mixture.
func NewMixture(components []Sampler, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("stats: mixture needs matching non-empty components/weights, got %d/%d",
			len(components), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: invalid mixture weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: mixture weights sum to %v", total)
	}
	return &Mixture{Components: components, Weights: weights}, nil
}

func (m *Mixture) totalWeight() float64 {
	t := 0.0
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// Sample picks a component by weight, then draws from it.
func (m *Mixture) Sample(r Rand) float64 {
	target := r.Float64() * m.totalWeight()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if target < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	total := m.totalWeight()
	mean := 0.0
	for i, w := range m.Weights {
		mean += w / total * m.Components[i].Mean()
	}
	return mean
}

// MinBound returns the smallest component bound.
func (m *Mixture) MinBound() float64 {
	min := math.Inf(1)
	for _, c := range m.Components {
		if b := c.MinBound(); b < min {
			min = b
		}
	}
	return min
}

// CDF is the weighted sum of component CDFs; it panics if any component
// does not implement Dist.
func (m *Mixture) CDF(x float64) float64 {
	total := m.totalWeight()
	cdf := 0.0
	for i, w := range m.Weights {
		cdf += w / total * m.Components[i].(Dist).CDF(x)
	}
	return cdf
}

// Scaled wraps a sampler, multiplying every draw by Factor. PEVPM uses it
// to extrapolate a measured distribution to a nearby message size or
// contention level when no exact benchmark point exists.
type Scaled struct {
	Base   Sampler
	Factor float64
}

// Sample draws from the base and scales it.
func (s Scaled) Sample(r Rand) float64 { return s.Factor * s.Base.Sample(r) }

// Mean returns the scaled mean.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// MinBound returns the scaled bound.
func (s Scaled) MinBound() float64 { return s.Factor * s.Base.MinBound() }
