// Package metrics is the deterministic observability layer of the
// simulation stack. It provides a registry of counters, gauges and
// fixed-bucket histograms keyed by (package, name, labels), designed
// around two constraints the rest of the repository imposes:
//
//   - Zero allocations on the hot path. Incrementing a counter, raising
//     a high-water gauge or observing into a histogram touches only
//     fields of a struct the caller already holds a pointer to — no
//     maps, no interfaces, no atomic boxes. Registration (the cold
//     path) does the allocation once, typically when an engine or
//     network is built.
//
//   - Determinism. Every metric value is integral (event counts, bytes,
//     int64 nanoseconds) and derived only from simulation state, never
//     from wall clocks, so snapshots are byte-identical for every
//     worker count, healthy and under fault schedules. Counters and
//     histograms merge by sum and gauges by max — all commutative and
//     associative, so even the merge order across sweep cells cannot
//     change the result (cells still fold in canonical order, matching
//     the makespan fold).
//
// Metrics that are inherently scheduling-dependent (per-worker cell
// counts in the sweep pool) are registered as "volatile": they are kept
// out of Snapshot and of the exported METRICS.json / Prometheus text,
// and are only visible through SnapshotAll for humans and tests.
//
// A registry is single-threaded by design, like the simulation engine
// it instruments: every sweep cell owns its engine and therefore its
// registry, and cross-cell aggregation happens on the caller's
// goroutine via Aggregate.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one key=value dimension of a metric (e.g. node="3").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Inc adds one. It performs no allocation.
func (c *Counter) Inc() { c.v++ }

// Add adds n. It performs no allocation.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a high-water mark: a level that only moves up through SetMax.
// (Plain Set exists for completeness, but merged snapshots combine
// gauges by max, so only high-water semantics survive aggregation.)
type Gauge struct {
	v int64
}

// SetMax raises the gauge to v if v is higher. It performs no allocation.
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram counts integral observations into fixed buckets. Bucket i
// holds observations v <= bounds[i] (and above bounds[i-1]); one
// overflow bucket holds everything above the last bound. Bounds are
// fixed at registration, so histograms from different sweep cells merge
// bucket-wise.
type Histogram struct {
	bounds []int64  // sorted inclusive upper bounds
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	sum    int64
	count  uint64
}

// Observe records v. It performs no allocation.
func (h *Histogram) Observe(v int64) {
	// Linear scan: bucket lists are short (single digits) and the scan
	// avoids the branch-misses of binary search on tiny arrays.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// entry is one registered instrument.
type entry struct {
	pkg, name string
	labels    []Label
	kind      kind
	volatile  bool

	c Counter
	g Gauge
	h Histogram
}

// Registry holds the instruments of one simulation (one engine, one
// sweep cell). It is not safe for concurrent use, matching the
// single-threaded engines it instruments.
type Registry struct {
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// key builds the canonical identity "pkg/name{k=v,...}" with labels in
// key order.
func key(pkg, name string, labels []Label) string {
	if len(labels) == 0 {
		return pkg + "/" + name
	}
	var b strings.Builder
	b.WriteString(pkg)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the entry for (pkg, name, labels), creating it on
// first use. Re-registering the same key with the same kind returns the
// existing instrument; a kind clash is a programming error and panics.
func (r *Registry) register(pkg, name string, labels []Label, k kind, volatile bool) *entry {
	if pkg == "" || name == "" {
		panic("metrics: empty package or name")
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	id := key(pkg, name, sorted)
	if e, ok := r.entries[id]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %s registered twice with kinds %v and %v", id, e.kind, k))
		}
		return e
	}
	e := &entry{pkg: pkg, name: name, labels: sorted, kind: k, volatile: volatile}
	r.entries[id] = e
	return e
}

// Counter registers (or returns) a deterministic counter.
func (r *Registry) Counter(pkg, name string, labels ...Label) *Counter {
	return &r.register(pkg, name, labels, kindCounter, false).c
}

// Gauge registers (or returns) a deterministic high-water gauge.
func (r *Registry) Gauge(pkg, name string, labels ...Label) *Gauge {
	return &r.register(pkg, name, labels, kindGauge, false).g
}

// Histogram registers (or returns) a deterministic fixed-bucket
// histogram. Bounds must be sorted ascending; they are fixed for the
// registry's lifetime (a re-registration keeps the original bounds).
func (r *Registry) Histogram(pkg, name string, bounds []int64, labels ...Label) *Histogram {
	e := r.register(pkg, name, labels, kindHistogram, false)
	return initHist(e, bounds)
}

// VolatileCounter registers a counter excluded from deterministic
// snapshots (see the package comment).
func (r *Registry) VolatileCounter(pkg, name string, labels ...Label) *Counter {
	return &r.register(pkg, name, labels, kindCounter, true).c
}

// VolatileGauge registers a high-water gauge excluded from
// deterministic snapshots.
func (r *Registry) VolatileGauge(pkg, name string, labels ...Label) *Gauge {
	return &r.register(pkg, name, labels, kindGauge, true).g
}

// VolatileHistogram registers a histogram excluded from deterministic
// snapshots.
func (r *Registry) VolatileHistogram(pkg, name string, bounds []int64, labels ...Label) *Histogram {
	e := r.register(pkg, name, labels, kindHistogram, true)
	return initHist(e, bounds)
}

func initHist(e *entry, bounds []int64) *Histogram {
	if e.h.counts != nil {
		return &e.h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s/%s histogram bounds not strictly ascending: %v",
				e.pkg, e.name, bounds))
		}
	}
	e.h.bounds = append([]int64(nil), bounds...)
	e.h.counts = make([]uint64, len(bounds)+1)
	return &e.h
}
