package metrics

import (
	"fmt"
	"sort"
)

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Pkg    string  `json:"pkg"`
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugePoint is one high-water gauge in a snapshot.
type GaugePoint struct {
	Pkg    string  `json:"pkg"`
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// HistogramPoint is one histogram in a snapshot. Counts has one more
// element than Bounds: the overflow bucket.
type HistogramPoint struct {
	Pkg    string   `json:"pkg"`
	Name   string   `json:"name"`
	Labels []Label  `json:"labels,omitempty"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
}

// Key returns the canonical identity of the point.
func (p CounterPoint) Key() string { return key(p.Pkg, p.Name, p.Labels) }

// Key returns the canonical identity of the point.
func (p GaugePoint) Key() string { return key(p.Pkg, p.Name, p.Labels) }

// Key returns the canonical identity of the point.
func (p HistogramPoint) Key() string { return key(p.Pkg, p.Name, p.Labels) }

// Snapshot is a stable-ordered copy of a registry's state: each section
// sorted by canonical key. Equal simulations produce byte-identical
// snapshots (and byte-identical JSON/Prometheus encodings).
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot copies the deterministic instruments into a stable-ordered
// snapshot. Volatile instruments are excluded — they may differ between
// worker counts and must not reach exported files.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(false) }

// SnapshotAll is Snapshot including volatile instruments, for human
// inspection and tests only.
func (r *Registry) SnapshotAll() Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	var s Snapshot
	//detlint:ordered -- every appended point is sorted by s.sort() before the snapshot is returned
	for _, e := range r.entries {
		if e.volatile && !includeVolatile {
			continue
		}
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterPoint{
				Pkg: e.pkg, Name: e.name, Labels: e.labels, Value: e.c.v,
			})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugePoint{
				Pkg: e.pkg, Name: e.name, Labels: e.labels, Value: e.g.v,
			})
		case kindHistogram:
			s.Histograms = append(s.Histograms, HistogramPoint{
				Pkg: e.pkg, Name: e.name, Labels: e.labels,
				Bounds: append([]int64(nil), e.h.bounds...),
				Counts: append([]uint64(nil), e.h.counts...),
				Sum:    e.h.sum,
				Count:  e.h.count,
			})
		}
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Key() < s.Counters[j].Key() })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Key() < s.Gauges[j].Key() })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Key() < s.Histograms[j].Key() })
}

// Counter returns the value of the named counter, or false if absent.
func (s Snapshot) Counter(pkg, name string, labels ...Label) (uint64, bool) {
	id := key(pkg, name, sortedLabels(labels))
	for _, p := range s.Counters {
		if p.Key() == id {
			return p.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge, or false if absent.
func (s Snapshot) Gauge(pkg, name string, labels ...Label) (int64, bool) {
	id := key(pkg, name, sortedLabels(labels))
	for _, p := range s.Gauges {
		if p.Key() == id {
			return p.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram point, or false if absent.
func (s Snapshot) Histogram(pkg, name string, labels ...Label) (HistogramPoint, bool) {
	id := key(pkg, name, sortedLabels(labels))
	for _, p := range s.Histograms {
		if p.Key() == id {
			return p, true
		}
	}
	return HistogramPoint{}, false
}

func sortedLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Aggregate folds snapshots from many sweep cells into one. Counters
// and histogram buckets add, gauges keep the maximum — the semantics
// every registered gauge has (high-water marks). All operations are
// commutative and associative, so the folded result is independent of
// merge order; callers still merge in canonical cell order, like the
// makespan fold, so even a future order-sensitive metric would stay
// deterministic.
type Aggregate struct {
	counters map[string]*CounterPoint
	gauges   map[string]*GaugePoint
	hists    map[string]*HistogramPoint
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		counters: make(map[string]*CounterPoint),
		gauges:   make(map[string]*GaugePoint),
		hists:    make(map[string]*HistogramPoint),
	}
}

// Merge folds one snapshot in. Histograms with the same key must have
// identical bounds (they are fixed at registration, so a mismatch is a
// programming error and panics).
func (a *Aggregate) Merge(s Snapshot) {
	for _, p := range s.Counters {
		id := p.Key()
		if have, ok := a.counters[id]; ok {
			have.Value += p.Value
		} else {
			cp := p
			a.counters[id] = &cp
		}
	}
	for _, p := range s.Gauges {
		id := p.Key()
		if have, ok := a.gauges[id]; ok {
			if p.Value > have.Value {
				have.Value = p.Value
			}
		} else {
			gp := p
			a.gauges[id] = &gp
		}
	}
	for _, p := range s.Histograms {
		id := p.Key()
		have, ok := a.hists[id]
		if !ok {
			hp := p
			hp.Bounds = append([]int64(nil), p.Bounds...)
			hp.Counts = append([]uint64(nil), p.Counts...)
			a.hists[id] = &hp
			continue
		}
		if len(have.Bounds) != len(p.Bounds) {
			panic(fmt.Sprintf("metrics: merging %s with different bucket bounds", id))
		}
		for i, b := range p.Bounds {
			if have.Bounds[i] != b {
				panic(fmt.Sprintf("metrics: merging %s with different bucket bounds", id))
			}
		}
		for i, c := range p.Counts {
			have.Counts[i] += c
		}
		have.Sum += p.Sum
		have.Count += p.Count
	}
}

// Snapshot returns the folded state, stable-ordered like a registry
// snapshot.
func (a *Aggregate) Snapshot() Snapshot {
	var s Snapshot
	for _, p := range a.counters {
		s.Counters = append(s.Counters, *p)
	}
	for _, p := range a.gauges {
		s.Gauges = append(s.Gauges, *p)
	}
	//detlint:ordered -- the appended copies are sorted by s.sort() below; per-iteration state is confined to hp
	for _, p := range a.hists {
		hp := *p
		hp.Bounds = append([]int64(nil), p.Bounds...)
		hp.Counts = append([]uint64(nil), p.Counts...)
		s.Histograms = append(s.Histograms, hp)
	}
	s.sort()
	return s
}
