package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim", "events_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("sim", "depth_max")
	g.SetMax(7)
	g.SetMax(3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7 (SetMax must not lower)", g.Value())
	}

	h := r.Histogram("net", "tries", []int64{0, 1, 2, 5})
	for _, v := range []int64{0, 0, 1, 3, 9} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 13 {
		t.Errorf("histogram count %d sum %d, want 5 and 13", h.Count(), h.Sum())
	}
	p, ok := r.Snapshot().Histogram("net", "tries")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 1, 0, 1, 1} // <=0, <=1, <=2, <=5, overflow
	for i, c := range want {
		if p.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, p.Counts[i], c, p.Counts)
		}
	}
}

func TestRegisterIdempotentAndKindClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("p", "n", L("k", "v"))
	b := r.Counter("p", "n", L("k", "v"))
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	// Label order must not matter for identity.
	x := r.Gauge("p", "g", L("a", "1"), L("b", "2"))
	y := r.Gauge("p", "g", L("b", "2"), L("a", "1"))
	if x != y {
		t.Error("label order changed instrument identity")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("p", "n", L("k", "v"))
}

func TestSnapshotStableOrderAndVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", "two").Inc()
	r.Counter("a", "one").Inc()
	r.VolatileCounter("z", "scheduling_dependent").Inc()

	s := r.Snapshot()
	if len(s.Counters) != 2 {
		t.Fatalf("deterministic snapshot has %d counters, want 2 (volatile excluded)", len(s.Counters))
	}
	if s.Counters[0].Key() != "a/one" || s.Counters[1].Key() != "b/two" {
		t.Errorf("snapshot not sorted by key: %v", []string{s.Counters[0].Key(), s.Counters[1].Key()})
	}
	if _, ok := r.SnapshotAll().Counter("z", "scheduling_dependent"); !ok {
		t.Error("SnapshotAll lost the volatile counter")
	}
}

// TestSnapshotJSONByteStable is the determinism contract in miniature:
// two registries built by the same code produce identical bytes.
func TestSnapshotJSONByteStable(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		for i := 0; i < 10; i++ {
			r.Counter("net", "bytes", L("node", string(rune('0'+i)))).Add(uint64(i) * 3)
		}
		r.Gauge("sim", "depth").SetMax(42)
		r.Histogram("net", "tries", []int64{0, 1, 2}).Observe(1)
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal registries produced different JSON bytes")
	}
}

func TestAggregateMergeSemantics(t *testing.T) {
	cell := func(n uint64, g int64, obs []int64) Snapshot {
		r := NewRegistry()
		r.Counter("p", "c").Add(n)
		r.Gauge("p", "g").SetMax(g)
		h := r.Histogram("p", "h", []int64{1, 10})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	s1 := cell(3, 5, []int64{0, 7})
	s2 := cell(4, 2, []int64{20})

	// Merge order must not matter (commutative fold).
	for _, order := range [][]Snapshot{{s1, s2}, {s2, s1}} {
		a := NewAggregate()
		for _, s := range order {
			a.Merge(s)
		}
		got := a.Snapshot()
		if v, _ := got.Counter("p", "c"); v != 7 {
			t.Errorf("merged counter = %d, want 7", v)
		}
		if v, _ := got.Gauge("p", "g"); v != 5 {
			t.Errorf("merged gauge = %d, want 5 (max)", v)
		}
		h, _ := got.Histogram("p", "h")
		if h.Count != 3 || h.Sum != 27 {
			t.Errorf("merged histogram count %d sum %d, want 3 and 27", h.Count, h.Sum)
		}
		if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
			t.Errorf("merged buckets %v, want [1 1 1]", h.Counts)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("net", "wire_bytes_total", L("node", "3")).Add(128)
	r.Counter("net", "wire_bytes_total", L("node", "7")).Add(64)
	r.Gauge("sim", "heap_depth_max").SetMax(9)
	h := r.Histogram("net", "rto_depth", []int64{0, 1})
	h.Observe(0)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE repro_net_wire_bytes_total counter",
		`repro_net_wire_bytes_total{node="3"} 128`,
		`repro_net_wire_bytes_total{node="7"} 64`,
		"# TYPE repro_sim_heap_depth_max gauge",
		"repro_sim_heap_depth_max 9",
		"# TYPE repro_net_rto_depth histogram",
		`repro_net_rto_depth_bucket{le="0"} 1`,
		`repro_net_rto_depth_bucket{le="1"} 1`,
		`repro_net_rto_depth_bucket{le="+Inf"} 2`,
		"repro_net_rto_depth_sum 5",
		"repro_net_rto_depth_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The format allows only one TYPE line per metric family: labelled
	// series of the same name must share it.
	if n := strings.Count(out, "# TYPE repro_net_wire_bytes_total "); n != 1 {
		t.Errorf("wire_bytes_total declared TYPE %d times, want 1:\n%s", n, out)
	}
}

// TestHotPathZeroAlloc is the tentpole guarantee: incrementing any
// instrument allocates nothing, so instrumentation cannot disturb the
// allocation-free simulation hot paths.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("p", "c")
	g := r.Gauge("p", "g")
	h := r.Histogram("p", "h", []int64{1, 2, 4, 8})

	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("counter increments allocate %.1f/op, want 0", n)
	}
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { v++; g.SetMax(v) }); n != 0 {
		t.Errorf("gauge SetMax allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v % 12) }); n != 0 {
		t.Errorf("histogram Observe allocates %.1f/op, want 0", n)
	}
}
