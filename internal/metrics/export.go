package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteJSON encodes the snapshot as indented JSON. The encoding is
// byte-stable: sections and points are sorted, all values are integral
// and label order is canonical, so two equal snapshots produce
// identical bytes (the property `make determinism` diffs).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// SaveJSON writes the snapshot to a file (the -metrics flag of the
// CLIs, conventionally METRICS.json).
func (s Snapshot) SaveJSON(path string) error {
	return s.save(path, s.WriteJSON)
}

// SavePrometheus writes the Prometheus text exposition to a file.
func (s Snapshot) SavePrometheus(path string) error {
	return s.save(path, s.WritePrometheus)
}

func (s Snapshot) save(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

// WritePrometheus encodes the snapshot in the Prometheus text
// exposition format (version 0.0.4). Metric names become
// repro_<pkg>_<name>; histograms expand into cumulative _bucket series
// plus _sum and _count, as the format requires. Output order matches
// the snapshot's canonical order, so it is byte-stable too.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// One TYPE line per metric name, as the format requires: labelled
	// series of the same metric sort adjacently, so compare with the
	// previous name. prev is reset per section — families never span
	// sections because a name registers as exactly one kind.
	prev := ""
	for _, p := range s.Counters {
		name := promName(p.Pkg, p.Name)
		if name != prev {
			bw.WriteString("# TYPE " + name + " counter\n")
			prev = name
		}
		bw.WriteString(name + promLabels(p.Labels, "", 0) + " " +
			strconv.FormatUint(p.Value, 10) + "\n")
	}
	prev = ""
	for _, p := range s.Gauges {
		name := promName(p.Pkg, p.Name)
		if name != prev {
			bw.WriteString("# TYPE " + name + " gauge\n")
			prev = name
		}
		bw.WriteString(name + promLabels(p.Labels, "", 0) + " " +
			strconv.FormatInt(p.Value, 10) + "\n")
	}
	prev = ""
	for _, p := range s.Histograms {
		name := promName(p.Pkg, p.Name)
		if name != prev {
			bw.WriteString("# TYPE " + name + " histogram\n")
			prev = name
		}
		cum := uint64(0)
		for i, b := range p.Bounds {
			cum += p.Counts[i]
			bw.WriteString(name + "_bucket" + promLabels(p.Labels, strconv.FormatInt(b, 10), 1) +
				" " + strconv.FormatUint(cum, 10) + "\n")
		}
		cum += p.Counts[len(p.Bounds)]
		bw.WriteString(name + "_bucket" + promLabels(p.Labels, "+Inf", 1) +
			" " + strconv.FormatUint(cum, 10) + "\n")
		bw.WriteString(name + "_sum" + promLabels(p.Labels, "", 0) + " " +
			strconv.FormatInt(p.Sum, 10) + "\n")
		bw.WriteString(name + "_count" + promLabels(p.Labels, "", 0) + " " +
			strconv.FormatUint(p.Count, 10) + "\n")
	}
	return bw.Flush()
}

// promName builds repro_<pkg>_<name> with every character outside
// [a-zA-Z0-9_] replaced by '_'.
func promName(pkg, name string) string {
	return "repro_" + promSanitize(pkg) + "_" + promSanitize(name)
}

func promSanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders {k="v",...}. le != "" (leMode 1) appends the
// histogram bucket's le label.
func promLabels(labels []Label, le string, leMode int) string {
	if len(labels) == 0 && leMode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promSanitize(l.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if leMode == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
