package repro

// One benchmark per figure of the paper, plus the ablation benches
// DESIGN.md calls out. The figure benches run a reduced-density version
// of each experiment and report the paper's headline quantity as a
// custom metric, so `go test -bench=. -benchmem` doubles as a regression
// harness for the reproduction (absolute numbers are sim-model outputs;
// the metrics are the shape quantities compared in EXPERIMENTS.md).

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/mpibench"
	"repro/internal/netsim"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Repetitions = 60
	p.Iterations = 200
	p.EvalRuns = 3
	return p
}

func findCurve(b *testing.B, curves []experiments.Curve, label string) experiments.Curve {
	b.Helper()
	for _, c := range curves {
		if c.Label == label {
			return c
		}
	}
	b.Fatalf("missing curve %q", label)
	return experiments.Curve{}
}

func curveAt(b *testing.B, c experiments.Curve, size int) float64 {
	b.Helper()
	for i, s := range c.Sizes {
		if s == size {
			return c.Micros[i]
		}
	}
	b.Fatalf("curve %q missing size %d", c.Label, size)
	return 0
}

// BenchmarkFigure1SmallMessageLatency regenerates Figure 1 and reports
// the paper's quoted contention ratio: the 1 KB average at 64×1 relative
// to 2×1 (the paper reports ~1.7).
func BenchmarkFigure1SmallMessageLatency(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		curves, err := experiments.Figure1(cluster.Perseus(), p)
		if err != nil {
			b.Fatal(err)
		}
		r2 := curveAt(b, findCurve(b, curves, "2x1"), 1024)
		r64 := curveAt(b, findCurve(b, curves, "64x1"), 1024)
		b.ReportMetric(r64/r2, "contention-ratio-1KB")
		b.ReportMetric(r2, "us-per-op-2x1-1KB")
	}
}

// BenchmarkFigure2LargeMessageLatency regenerates Figure 2 and reports
// the 16 KB two-process goodput (paper: 81 Mbit/s) and the saturation
// ratio of 64×1 to 8×1 at 16 KB.
func BenchmarkFigure2LargeMessageLatency(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		curves, err := experiments.Figure2(cluster.Perseus(), p)
		if err != nil {
			b.Fatal(err)
		}
		t2 := curveAt(b, findCurve(b, curves, "2x1"), 16384)
		b.ReportMetric(16384*8/(t2/1e6)/1e6, "Mbit-goodput-2x1-16KB")
		sat := curveAt(b, findCurve(b, curves, "64x1"), 16384) /
			curveAt(b, findCurve(b, curves, "8x1"), 16384)
		b.ReportMetric(sat, "saturation-ratio-64x1-16KB")
	}
}

// BenchmarkFigure3SmallMessagePDFs regenerates the high-contention small
// message distributions and reports the dispersion (std/mean) of the
// 1 KB profile at 64×2.
func BenchmarkFigure3SmallMessagePDFs(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		pdfs, err := experiments.Figure3(cluster.Perseus(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, pdf := range pdfs {
			if pdf.Size == 1024 {
				b.ReportMetric((pdf.Mean-pdf.Min)/pdf.Mean, "rel-spread-64x2-1KB")
			}
		}
	}
}

// BenchmarkFigure4SaturationPDFs regenerates the saturated distributions
// and reports the tail length (max/mean) of the 16 KB 64×1 profile,
// which the retransmission-timeout outliers dominate.
func BenchmarkFigure4SaturationPDFs(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		pdfs, err := experiments.Figure4(cluster.Perseus(), p)
		if err != nil {
			b.Fatal(err)
		}
		for _, pdf := range pdfs {
			if pdf.Size == 16384 {
				b.ReportMetric(pdf.Max/pdf.Mean, "tail-ratio-64x1-16KB")
			}
		}
	}
}

// BenchmarkFigure6JacobiSpeedup regenerates the speedup comparison and
// reports the worst distribution-mode prediction error (paper: ≤5%) and
// the worst ping-pong-mode error (the paper's "misleading" baseline).
func BenchmarkFigure6JacobiSpeedup(b *testing.B) {
	p := benchParams()
	p.MaxNodes = 32
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		res, err := experiments.Figure6(cluster.Perseus(), p, nil)
		if err != nil {
			b.Fatal(err)
		}
		measured, _ := res.SeriesByLabel("measured")
		dist, _ := res.SeriesByLabel("pevpm distributions")
		ping, _ := res.SeriesByLabel("pevpm min 2x1")
		worstDist, worstPing := 0.0, 0.0
		for j := range measured.Procs {
			if e := math.Abs(dist.Speedups[j]-measured.Speedups[j]) / measured.Speedups[j]; e > worstDist {
				worstDist = e
			}
			if e := math.Abs(ping.Speedups[j]-measured.Speedups[j]) / measured.Speedups[j]; e > worstPing {
				worstPing = e
			}
		}
		b.ReportMetric(worstDist*100, "worst-dist-error-%")
		b.ReportMetric(worstPing*100, "worst-pingpong-error-%")
	}
}

// BenchmarkPEVPMEvaluationCost measures the paper's §6 cost claim: how
// many seconds of modelled processor time one wall-clock second of PEVPM
// evaluation covers (the paper reports 67.5× on one CPU of Perseus).
func BenchmarkPEVPMEvaluationCost(b *testing.B) {
	cfg := cluster.Perseus()
	j := workloads.Jacobi{XSize: 256, Iterations: 2000, SweepSeconds: cluster.JacobiSweepSeconds}
	prog, err := j.Model()
	if err != nil {
		b.Fatal(err)
	}
	pl, err := cluster.NewPlacement(&cfg, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op: mpibench.OpSend, Sizes: []int{1024}, Repetitions: 60, Seed: 3,
	}, []cluster.Placement{pl})
	if err != nil {
		b.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	var modelled float64
	for i := 0; i < b.N; i++ {
		rep, err := pevpm.Evaluate(prog, pevpm.Options{
			Procs: 16, DB: db, Seed: uint64(i), NodeOf: pl.NodeOf,
		})
		if err != nil {
			b.Fatal(err)
		}
		modelled += rep.Makespan * 16 // processor-seconds covered
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(modelled/wall, "modelled-cpu-s/wall-s")
	}
}

// BenchmarkMPISendRecv measures the simulator's throughput executing the
// fundamental operation pair, in simulated messages per wall second.
func BenchmarkMPISendRecv(b *testing.B) {
	cfg := cluster.Perseus()
	pl, err := cluster.NewPlacement(&cfg, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := workloads.Execute(cfg, pl, uint64(i), func(c *mpi.Comm) {
			partner := 1 - c.Rank()
			for k := 0; k < 1000; k++ {
				c.Sendrecv(partner, 0, 1024, partner, 0)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000*float64(b.N)/b.Elapsed().Seconds(), "sim-msgs/s")
}

// BenchmarkNetsimTransfer measures raw network-model event throughput.
func BenchmarkNetsimTransfer(b *testing.B) {
	cfg := cluster.Perseus()
	e := sim.NewEngine(1)
	n := netsim.New(e, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Transfer(i%64, (i+32)%64, 1024, nil)
		if i%1024 == 1023 {
			if _, err := e.Run(sim.Forever); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHistogramBinWidth is the DESIGN.md ablation on PEVPM's main
// error source, bin granularity: it evaluates the same model from the
// same measurements binned at three widths and reports the spread of the
// predictions.
func BenchmarkHistogramBinWidth(b *testing.B) {
	cfg := cluster.Perseus()
	pl, err := cluster.NewPlacement(&cfg, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	j := workloads.Jacobi{XSize: 256, Iterations: 100, SweepSeconds: cluster.JacobiSweepSeconds}
	prog, err := j.Model()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var preds []float64
		for _, width := range []float64{2e-6, 20e-6, 200e-6} {
			set, err := mpibench.RunSweep(cfg, mpibench.Spec{
				Op: mpibench.OpSend, Sizes: []int{1024},
				Repetitions: 60, BinWidth: width, Seed: uint64(i + 1),
			}, []cluster.Placement{pl})
			if err != nil {
				b.Fatal(err)
			}
			db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
			if err != nil {
				b.Fatal(err)
			}
			sum, err := pevpm.EvaluateN(prog, pevpm.Options{
				Procs: 8, DB: db, Seed: 9, NodeOf: pl.NodeOf,
			}, 5)
			if err != nil {
				b.Fatal(err)
			}
			preds = append(preds, sum.Mean)
		}
		var s stats.Summary
		for _, v := range preds {
			s.Add(v)
		}
		b.ReportMetric((s.Max-s.Min)/s.Mean*100, "binwidth-spread-%")
	}
}

// BenchmarkFittedVsEmpirical is the §2 "parametrised functions" ablation:
// predict the same Jacobi run from the raw histograms and from their
// best-fit parametric distributions, and report how far the two
// predictions diverge (small divergence = the fits capture what the
// model needs; the fitted database is ~100× smaller).
func BenchmarkFittedVsEmpirical(b *testing.B) {
	cfg := cluster.Perseus()
	var pls []cluster.Placement
	for _, n := range []int{2, 8, 16} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		pls = append(pls, pl)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op: mpibench.OpSend, Sizes: []int{0, 1024, 4096}, Repetitions: 80, Seed: 17,
	}, pls)
	if err != nil {
		b.Fatal(err)
	}
	empirical, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		b.Fatal(err)
	}
	fitted, err := pevpm.NewFittedDBFrom(empirical)
	if err != nil {
		b.Fatal(err)
	}
	j := workloads.Jacobi{XSize: 256, Iterations: 150, SweepSeconds: cluster.JacobiSweepSeconds}
	prog, err := j.Model()
	if err != nil {
		b.Fatal(err)
	}
	pl := pls[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := pevpm.Options{Procs: 16, Seed: uint64(i + 1), NodeOf: pl.NodeOf}
		opts.DB = empirical
		se, err := pevpm.EvaluateN(prog, opts, 5)
		if err != nil {
			b.Fatal(err)
		}
		opts.DB = fitted
		sf, err := pevpm.EvaluateN(prog, opts, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(math.Abs(sf.Mean-se.Mean)/se.Mean*100, "fitted-vs-empirical-%")
	}
}

// BenchmarkCollectiveTable regenerates the collective scaling companion
// data and reports the binomial broadcast's 4→16 process growth factor
// (≈2 for a tree, 4 for a linear algorithm).
func BenchmarkCollectiveTable(b *testing.B) {
	p := benchParams()
	p.MaxNodes = 16
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		rows, err := experiments.CollectiveTable(cluster.Perseus(), p, 1024)
		if err != nil {
			b.Fatal(err)
		}
		var b4, b16 float64
		for _, r := range rows {
			if r.Op == mpibench.OpBcast && r.Procs == 4 {
				b4 = r.MeanUs
			}
			if r.Op == mpibench.OpBcast && r.Procs == 16 {
				b16 = r.MeanUs
			}
		}
		if b4 > 0 {
			b.ReportMetric(b16/b4, "bcast-4to16-growth")
		}
	}
}

// BenchmarkPerfDBInterpolation is the DESIGN.md ablation on the bilinear
// quantile interpolation: cost per sample.
func BenchmarkPerfDBInterpolation(b *testing.B) {
	cfg := cluster.Perseus()
	var pls []cluster.Placement
	for _, n := range []int{2, 8, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		pls = append(pls, pl)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op: mpibench.OpIsend, Sizes: []int{0, 1024, 16384}, Repetitions: 60, Seed: 2,
	}, pls)
	if err != nil {
		b.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpIsend, cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewRNG(1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += db.Sample(r, 700+i%9000, 2+i%40)
	}
	_ = sink
}

// BenchmarkPlacementLocality quantifies the reproduction finding in
// EXPERIMENTS.md: benchmark distributions only transfer to applications
// whose traffic sees the same network locality. It predicts a
// block-placed Jacobi run (neighbour traffic mostly same-switch) and a
// scattered one (neighbour traffic cross-switch) from the same
// scattered-placement benchmark database, and reports both errors.
func BenchmarkPlacementLocality(b *testing.B) {
	cfg := cluster.Perseus()
	scatter, err := cluster.NewPlacement(&cfg, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	block, err := cluster.NewBlockPlacement(&cfg, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	var benchPls []cluster.Placement
	for _, n := range []int{2, 8, 32, 64} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchPls = append(benchPls, pl)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op: mpibench.OpSend, Sizes: []int{0, 1024, 4096}, Repetitions: 80, Seed: 23,
	}, benchPls)
	if err != nil {
		b.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		b.Fatal(err)
	}
	j := workloads.Jacobi{XSize: 256, Iterations: 200, SweepSeconds: cluster.JacobiSweepSeconds}
	prog, err := j.Model()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		predErr := func(pl cluster.Placement, label string) {
			measured, err := workloads.Execute(cfg, pl, uint64(i+1), j.Run)
			if err != nil {
				b.Fatal(err)
			}
			sum, err := pevpm.EvaluateN(prog, pevpm.Options{
				Procs: 32, DB: db, Seed: uint64(i + 7), NodeOf: pl.NodeOf,
			}, 4)
			if err != nil {
				b.Fatal(err)
			}
			got := measured.Makespan.Seconds()
			b.ReportMetric(math.Abs(sum.Mean-got)/got*100, label)
		}
		predErr(scatter, "scatter-error-%")
		predErr(block, "block-error-%")
	}
}

// BenchmarkClockSync measures the global clock synchronisation: its
// wall cost and the residual error it achieves across 16 drifting nodes
// (the measurement noise floor, in microseconds).
func BenchmarkClockSync(b *testing.B) {
	cfg := cluster.Perseus()
	pl, err := cluster.NewPlacement(&cfg, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := mpibench.Run(cfg, mpibench.Spec{
			Op: mpibench.OpIsend, Sizes: []int{64}, Placement: pl,
			Repetitions: 10, WarmUp: 2, SyncProbes: 40, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SyncResidual > worst {
			worst = res.SyncResidual
		}
	}
	b.ReportMetric(worst*1e6, "worst-sync-residual-us")
}

// BenchmarkShardedRun measures the sharded large-cluster engine: one
// 2048-node fat-tree windowed-ring run per iteration, executed by all
// cores. The shard-speedup metric compares a 1-worker run against an
// all-cores run of the same spec (whose outputs are byte-identical by
// the determinism contract); on a single-core machine it reports ~1.0
// by construction, so treat it as informative on multi-core runners
// only.
func BenchmarkShardedRun(b *testing.B) {
	spec := experiments.LargeRunSpec{
		Topo: "fattree:2048x32x8", Rounds: 1, Window: 2, Size: 8192, Seed: 1,
	}
	timeOne := func(workers int) float64 {
		s := spec
		s.Workers = workers
		start := time.Now()
		if _, err := experiments.LargeRun(s); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	serial := timeOne(1)
	parallel := timeOne(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := spec
		s.Seed = uint64(i + 1)
		rep, err := experiments.LargeRun(s)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Makespan == 0 {
			b.Fatal("degenerate run")
		}
	}
	b.ReportMetric(serial/parallel, "shard-speedup")
}
