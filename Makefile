# Build and verification entry points. `make ci` is what the repository
# considers a green build (see also ci.sh, the script CI invokes).

GO ?= go

.PHONY: all build vet test race lint ci clean bench bench-check bench-baseline determinism faults-smoke determinism-faults profile

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint sweeps the repository's own static analyzer over every shipped
# model and lint fixture, checking each file's expected exit code.
lint:
	./scripts/lint_sweep.sh

# bench regenerates the benchmark ledger: every figure at reduced
# density, with figure metrics and calibration-normalised wall times.
bench:
	$(GO) run ./cmd/benchjson -out BENCH.json

# bench-check gates on the committed baseline: >15% normalised
# wall-clock regression or >5% drift of a deterministic figure metric
# fails. Refresh the baseline with `make bench-baseline` (see docs/CI.md).
bench-check: bench
	$(GO) run ./cmd/benchjson -check -current BENCH.json -baseline BENCH_baseline.json

bench-baseline:
	$(GO) run ./cmd/benchjson -out BENCH_baseline.json

# determinism proves parallel sweeps change wall-clock only: the quick
# repro run must be byte-identical between -parallel=1 and the default
# worker count, and both must match the committed golden transcript so
# optimisation PRs cannot silently change simulated results
# (cmd/repro/testdata/golden_seed1.txt; regenerate it only when a PR
# deliberately changes model behaviour, and say so in the PR).
determinism:
	$(GO) run ./cmd/repro -seed 1 -timing=false -collectives -parallel=1 > /tmp/repro-serial.txt
	$(GO) run ./cmd/repro -seed 1 -timing=false -collectives > /tmp/repro-parallel.txt
	diff /tmp/repro-serial.txt /tmp/repro-parallel.txt
	diff /tmp/repro-serial.txt cmd/repro/testdata/golden_seed1.txt
	@echo "determinism: serial and parallel outputs are byte-identical and match the golden transcript"

# profile captures CPU and allocation pprof profiles of the quick repro
# sweep into profiles/ (gitignored). Inspect with
# `go tool pprof profiles/cpu.pprof` — see docs/PERFORMANCE.md.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/repro -seed 1 -timing=false -cpuprofile profiles/cpu.pprof -memprofile profiles/allocs.pprof > /dev/null
	@echo "profile: wrote profiles/cpu.pprof and profiles/allocs.pprof"

# faults-smoke exercises one fault-scenario preset end to end through
# the CLI (schedule construction, perturbed benches, Jacobi
# measured-vs-predicted), failing on any error exit.
faults-smoke:
	$(GO) run ./cmd/repro -seed 1 -faults flaky-nic > /dev/null
	@echo "faults-smoke: perturbed sweep ran clean"

# determinism-faults extends the determinism proof to the perturbed
# sweep: fault windows, perturbed benches and predictions must be
# byte-identical between -parallel=1 and the default worker count.
determinism-faults:
	$(GO) run ./cmd/repro -seed 1 -faults all -parallel=1 > /tmp/repro-faults-serial.txt
	$(GO) run ./cmd/repro -seed 1 -faults all > /tmp/repro-faults-parallel.txt
	diff /tmp/repro-faults-serial.txt /tmp/repro-faults-parallel.txt
	@echo "determinism-faults: serial and parallel perturbed sweeps are byte-identical"

ci:
	./ci.sh

clean:
	$(GO) clean ./...
	rm -f BENCH.json
