# Build and verification entry points. `make ci` is what the repository
# considers a green build (see also ci.sh, the script CI invokes).

GO ?= go

.PHONY: all build vet test race lint detlint staticcheck coverage ci clean bench bench-check bench-baseline determinism faults-smoke determinism-faults profile service-gate serve-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint sweeps the repository's own static analyzer over every shipped
# model and lint fixture, checking each file's expected exit code.
lint:
	./scripts/lint_sweep.sh

# detlint enforces the determinism and zero-alloc contracts with the
# repository's own analyzers (internal/detlint, docs/DETLINT.md):
# wallclock/maprange/rng over the deterministic packages, hotpath over
# every //detlint:hotpath function. Stdlib-only, so it runs offline.
detlint:
	$(GO) run ./cmd/detlint -werror ./...

# staticcheck runs the pinned honnef.co staticcheck sweep via `go run`
# (nothing is vendored). Offline environments skip with a notice; CI
# always has the module proxy and runs the real check.
staticcheck:
	./scripts/staticcheck.sh

# coverage gates per-package test coverage against the committed floor
# in scripts/coverage_floor.txt (>1pt regression fails). Refresh the
# floor with `./scripts/coverage_gate.sh -update` after improving it.
coverage:
	./scripts/coverage_gate.sh

# bench regenerates the benchmark ledger: every figure at reduced
# density, replicated across 3 independent sub-seeds, stored as
# per-metric 95% confidence-interval cells (schema 2).
bench:
	$(GO) run ./cmd/benchjson -out BENCH.json

# bench-check gates on the committed baseline with the CI-overlap test:
# a figure metric fails when its interval and the baseline's are
# disjoint; a calibration-normalised wall metric fails only when the
# current interval lies entirely above the baseline's (a slowdown
# bigger than both runs' noise). Refresh the baseline with
# `make bench-baseline`; see docs/BENCHMARKING.md and docs/CI.md.
bench-check: bench
	$(GO) run ./cmd/benchjson -check -current BENCH.json -baseline BENCH_baseline.json

bench-baseline:
	$(GO) run ./cmd/benchjson -out BENCH_baseline.json

# determinism proves parallel sweeps change wall-clock only: the quick
# repro run must be byte-identical between -parallel=1 and the default
# worker count, and both must match the committed golden transcript so
# optimisation PRs cannot silently change simulated results
# (cmd/repro/testdata/golden_seed1.txt; regenerate it only when a PR
# deliberately changes model behaviour, and say so in the PR).
# The instrument snapshot (-metrics) is held to the same standard as
# the figures: byte-identical across worker counts and matching its own
# golden file (cmd/repro/testdata/golden_metrics_seed1.json).
determinism:
	$(GO) run ./cmd/repro -seed 1 -timing=false -collectives -parallel=1 -metrics /tmp/repro-metrics-serial.json > /tmp/repro-serial.txt
	$(GO) run ./cmd/repro -seed 1 -timing=false -collectives -metrics /tmp/repro-metrics-parallel.json > /tmp/repro-parallel.txt
	diff /tmp/repro-serial.txt /tmp/repro-parallel.txt
	diff /tmp/repro-serial.txt cmd/repro/testdata/golden_seed1.txt
	diff /tmp/repro-metrics-serial.json /tmp/repro-metrics-parallel.json
	diff /tmp/repro-metrics-serial.json cmd/repro/testdata/golden_metrics_seed1.json
	@echo "determinism: serial and parallel outputs and metrics are byte-identical and match the golden files"
	$(GO) run ./cmd/mpibench -op MPI_Isend -config 2x1,4x1 -sizes 1024 -reps 40 -warmup 10 \
		-adapt-relwidth 0.03 -adapt-max-batches 3 -parallel 1 -seed 1 -summary=false \
		-out /tmp/mpibench-adaptive-serial.json > /dev/null
	$(GO) run ./cmd/mpibench -op MPI_Isend -config 2x1,4x1 -sizes 1024 -reps 40 -warmup 10 \
		-adapt-relwidth 0.03 -adapt-max-batches 3 -parallel 8 -seed 1 -summary=false \
		-out /tmp/mpibench-adaptive-parallel.json > /dev/null
	diff /tmp/mpibench-adaptive-serial.json /tmp/mpibench-adaptive-parallel.json
	@echo "determinism: adaptive-stopping runs (stopping decisions, CIs, manifests) are byte-identical serial vs parallel"
	$(GO) run ./cmd/run -app largerun -topo fattree:2048x32x8 -shards 1 -rounds 1 -window 2 -msg-size 8192 \
		-manifest /tmp/largerun-manifest-serial.json -metrics /tmp/largerun-metrics-serial.json > /tmp/largerun-serial.txt
	$(GO) run ./cmd/run -app largerun -topo fattree:2048x32x8 -shards 4 -rounds 1 -window 2 -msg-size 8192 \
		-manifest /tmp/largerun-manifest-sharded.json -metrics /tmp/largerun-metrics-sharded.json > /tmp/largerun-sharded.txt
	grep -v '^wrote ' /tmp/largerun-serial.txt > /tmp/largerun-serial-out.txt
	grep -v '^wrote ' /tmp/largerun-sharded.txt > /tmp/largerun-sharded-out.txt
	diff /tmp/largerun-serial-out.txt /tmp/largerun-sharded-out.txt
	diff /tmp/largerun-manifest-serial.json /tmp/largerun-manifest-sharded.json
	diff /tmp/largerun-metrics-serial.json /tmp/largerun-metrics-sharded.json
	$(GO) run ./cmd/run -app largerun -topo fattree:2048x32x8 -shards 1 -rounds 1 -window 2 -msg-size 8192 \
		-faults congested-backplane > /tmp/largerun-faults-serial.txt
	$(GO) run ./cmd/run -app largerun -topo fattree:2048x32x8 -shards 4 -rounds 1 -window 2 -msg-size 8192 \
		-faults congested-backplane > /tmp/largerun-faults-sharded.txt
	diff /tmp/largerun-faults-serial.txt /tmp/largerun-faults-sharded.txt
	@echo "determinism: 2048-node sharded runs (transcript, manifest, metrics; healthy and faulted) are byte-identical at 1 vs 4 shards"
	$(GO) run ./cmd/mpibench -pattern rail,fan,dense -topo fattree:128x32x4 -pgk 32x4x2 -window 2 \
		-sizes 4096 -reps 6 -warmup 2 -seed 7 -estimates -parallel 1 -summary=false \
		-out /tmp/mpibench-pattern-serial.json > /dev/null
	$(GO) run ./cmd/mpibench -pattern rail,fan,dense -topo fattree:128x32x4 -pgk 32x4x2 -window 2 \
		-sizes 4096 -reps 6 -warmup 2 -seed 7 -estimates -parallel 8 -summary=false \
		-out /tmp/mpibench-pattern-parallel.json > /dev/null
	diff /tmp/mpibench-pattern-serial.json /tmp/mpibench-pattern-parallel.json
	@echo "determinism: Rail/Fan/Dense pattern sweeps (distributions, estimates, manifests) are byte-identical serial vs parallel"

# service-gate starts a real pevpmd prediction server on an ephemeral
# port and replays the committed golden requests against it: repeated
# and concurrent identical requests must return byte-identical bodies,
# the second request must be a response-cache hit, and every reply must
# match its committed golden (cmd/pevpmd/testdata). Regenerate goldens
# after a deliberate response-schema change with
# `./scripts/service_gate.sh -update-golden` — and say so in the PR.
service-gate:
	./scripts/service_gate.sh

# serve-smoke is the load half of the service gate: N concurrent mixed
# requests (SERVICE_SMOKE_N, default 32) against a fresh server, with
# duplicate requests asserted byte-identical and a cache-hit-rate +
# per-stage latency table written to GITHUB_STEP_SUMMARY in CI.
serve-smoke:
	./scripts/service_gate.sh -smoke-only

# profile captures CPU and allocation pprof profiles of the quick repro
# sweep into profiles/ (gitignored). Inspect with
# `go tool pprof profiles/cpu.pprof` — see docs/PERFORMANCE.md.
# Stale artifacts are removed first: ci.sh gates on `test -s`, which a
# leftover profile from an earlier run would satisfy even if this run
# failed to write one.
profile:
	mkdir -p profiles
	rm -f profiles/*.pprof
	$(GO) run ./cmd/repro -seed 1 -timing=false -cpuprofile profiles/cpu.pprof -memprofile profiles/allocs.pprof > /dev/null
	@echo "profile: wrote profiles/cpu.pprof and profiles/allocs.pprof"

# faults-smoke exercises one fault-scenario preset end to end through
# the CLI (schedule construction, perturbed benches, Jacobi
# measured-vs-predicted), failing on any error exit.
faults-smoke:
	$(GO) run ./cmd/repro -seed 1 -faults flaky-nic > /dev/null
	@echo "faults-smoke: perturbed sweep ran clean"

# determinism-faults extends the determinism proof to the perturbed
# sweep: fault windows, perturbed benches and predictions must be
# byte-identical between -parallel=1 and the default worker count.
determinism-faults:
	$(GO) run ./cmd/repro -seed 1 -faults all -parallel=1 -metrics /tmp/repro-faults-metrics-serial.json > /tmp/repro-faults-serial.txt
	$(GO) run ./cmd/repro -seed 1 -faults all -metrics /tmp/repro-faults-metrics-parallel.json > /tmp/repro-faults-parallel.txt
	diff /tmp/repro-faults-serial.txt /tmp/repro-faults-parallel.txt
	diff /tmp/repro-faults-metrics-serial.json /tmp/repro-faults-metrics-parallel.json
	@echo "determinism-faults: serial and parallel perturbed sweeps (figures and metrics) are byte-identical"

ci:
	./ci.sh

clean:
	$(GO) clean ./...
	rm -f BENCH.json
