# Build and verification entry points. `make ci` is what the repository
# considers a green build (see also ci.sh, the script CI invokes).

GO ?= go

.PHONY: all build vet test race lint ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repository's own static analyzer over the shipped models.
lint:
	$(GO) run ./cmd/mpilint examples/jacobi/jacobi.pvm

ci:
	./ci.sh

clean:
	$(GO) clean ./...
