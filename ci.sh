#!/bin/sh
# The repository's CI gate: vet, build, the full test suite under the
# race detector, and an mpilint smoke test over the shipped Jacobi
# model (which must lint clean — zero findings, exit 0).
set -eux

go vet ./...
go build ./...
go test -race ./...
go run ./cmd/mpilint examples/jacobi/jacobi.pvm
