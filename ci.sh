#!/bin/sh
# The repository's CI gate (see docs/CI.md for the full pipeline
# description):
#
#   1. go vet + build, plus the pinned staticcheck sweep (skips with a
#      notice when the module proxy is unreachable; see
#      scripts/staticcheck.sh)
#   2. the full test suite under the race detector
#   3. the detlint sweep: the repository's own determinism/zero-alloc
#      analyzers (internal/detlint, docs/DETLINT.md) over every
#      package, warnings promoted to errors; stdlib-only, never skipped
#   4. the mpilint sweep over every shipped .pvm model and fixture,
#      checking each file's expected clean/finding exit code
#   5. the determinism diff: cmd/repro run twice with the same seed,
#      serial (-parallel=1) and at the default worker count — any byte
#      of divergence in the figures or the -metrics snapshot fails,
#      and both must match their committed golden files; the same
#      serial-vs-parallel diff covers an adaptive-stopping mpibench run
#      (stopping decisions, confidence intervals and manifests included)
#   6. the fault-injection gates: one scenario preset smoke-run through
#      the CLI, then the serial-vs-parallel determinism diff of the
#      full perturbed sweep (figures and metrics); the determinism step
#      also covers the sharded large-run mode (a 2048-node fat tree at
#      1 vs 4 shards, healthy and faulted) and the Rail/Fan/Dense
#      pattern sweep (serial vs parallel); the fat-tree, dragonfly and
#      pattern smoke runs below keep the hierarchical-topology and
#      group-to-group CLI paths exercised (docs/PATTERNS.md)
#   7. the pprof smoke: `make profile` must produce non-empty CPU and
#      allocation profiles (tooling stays usable; timing not gated)
#   8. the benchmark CI-overlap gate against BENCH_baseline.json:
#      metrics are replicated interval cells, and a metric fails only
#      when its interval and the baseline's are disjoint (wall metrics:
#      disjoint in the regression direction, after calibration
#      normalisation) — see docs/BENCHMARKING.md
#   9. the coverage gate against scripts/coverage_floor.txt
#  10. the service gate: a real pevpmd prediction server on an
#      ephemeral port, the committed golden requests replayed against
#      it (repeated and concurrent identical requests byte-identical,
#      second request a response-cache hit, bodies matching the
#      committed goldens), then a concurrent load smoke whose duplicate
#      requests must dedupe to identical bytes (docs/SERVICE.md)
set -eux

go vet ./...
go build ./...
make staticcheck
go test -race ./...
make detlint
make lint
make determinism
make faults-smoke
make determinism-faults
# fat-tree smoke: the sharded large-run CLI end to end on a fresh topology
go run ./cmd/run -app largerun -topo fattree:512x16x4 -shards 0 -rounds 1 -window 2 -msg-size 4096 > /dev/null
go run ./cmd/run -app largerun -topo dragonfly:8x4x8+2rail -shards 0 -rounds 1 -window 1 -msg-size 2048 > /dev/null
# pattern smoke: the group-to-group engine end to end on both topology families
go run ./cmd/mpibench -pattern dense -topo dragonfly:4x2x4 -pgk 8x4x2 -direction omni -window 2 -sizes 4096 -reps 6 -warmup 2 -summary=false
go run ./cmd/run -app patternrun -topo fattree:512x16x4 -pattern rail -pgk 16x4x2 -rounds 1 -window 2 -msg-size 4096 -shards 0 > /dev/null
make profile
test -s profiles/cpu.pprof
test -s profiles/allocs.pprof
make bench-check
make coverage
make service-gate
