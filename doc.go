// Package repro reproduces "Communication Benchmarking and Performance
// Modelling of MPI Programs on Cluster Computers" (Grove & Coddington):
// the MPIBench communication benchmark and the PEVPM performance
// modelling tool, together with the simulated commodity cluster they run
// against. See README.md for the tour and DESIGN.md for the system
// inventory; bench_test.go regenerates every figure of the paper.
package repro
