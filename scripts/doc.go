// Package scripts holds the repository's shell gates and their Go
// regression tests. The shell scripts themselves are the product; the
// Go files here only exist so `go test ./scripts` can exercise them
// against synthetic inputs (see coverage_gate_test.go, which drives
// coverage_gate.sh through its COVERAGE_REUSE/COVERAGE_FLOOR test
// knobs).
package scripts
