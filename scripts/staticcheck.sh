#!/bin/sh
# Pinned staticcheck sweep (honnef.co/go/tools). Nothing is vendored:
# the tool is fetched and executed through `go run`, so the module
# version below is the single source of truth for what CI enforces.
#
# Offline environments cannot fetch the module; they skip with a notice
# and exit 0 so `make ci` stays runnable without network access. GitHub
# CI always reaches the proxy and runs the real check.
set -eu
cd "$(dirname "$0")/.."

VERSION=2025.1.1

# Probe availability first: `go run` of an uncached module needs the
# proxy, and we want a clean skip rather than a misleading failure.
if ! go run "honnef.co/go/tools/cmd/staticcheck@$VERSION" -version >/dev/null 2>&1; then
	echo "staticcheck: cannot fetch honnef.co/go/tools@$VERSION (offline?); skipping" >&2
	echo "staticcheck: the check runs for real in GitHub CI" >&2
	exit 0
fi

exec go run "honnef.co/go/tools/cmd/staticcheck@$VERSION" ./...
