#!/bin/sh
# Per-package test-coverage gate.
#
#   scripts/coverage_gate.sh           check against scripts/coverage_floor.txt
#   scripts/coverage_gate.sh -update   rewrite the floor from the current run
#
# One `go test -coverprofile` run covers every package; per-package
# percentages are computed from the merged profile (statements covered /
# statements total, deduplicated by block). The gate fails when any
# package with a floor entry — or the repository total — drops more than
# one point below its floor, so coverage can only ratchet down
# deliberately (improve it, then -update and commit the new floor).
# A package that produces coverage but has no floor entry also fails:
# new packages must be added to the floor with -update, or they would
# ship ungated forever. Packages without tests produce no profile
# entries and are not gated.
#
# When GITHUB_STEP_SUMMARY is set (GitHub Actions), the per-package
# delta table is appended there as markdown.
set -eu
cd "$(dirname "$0")/.."

profile="${COVERPROFILE:-coverage.out}"
floor="${COVERAGE_FLOOR:-scripts/coverage_floor.txt}"

# COVERAGE_REUSE=1 skips the test run and reads an existing profile.
# This exists for the gate's own regression tests (scripts/
# coverage_gate_test.go), which feed synthetic profiles and floors —
# without it the test would recurse into `go test ./...` forever.
if [ -z "${COVERAGE_REUSE:-}" ]; then
	go test -count=1 -coverprofile="$profile" ./... >/dev/null
fi

current=$(mktemp)
trap 'rm -f "$current"' EXIT
awk '
NR > 1 {
	i = index($1, ":"); pkg = substr($1, 1, i - 1)
	sub(/\/[^\/]*$/, "", pkg)
	key = pkg SUBSEP $1
	stmts[key] = $(NF - 1)
	if ($NF > 0) hit[key] = 1
}
END {
	for (key in stmts) {
		split(key, k, SUBSEP); p = k[1]
		total[p] += stmts[key]; gtotal += stmts[key]
		if (key in hit) { cov[p] += stmts[key]; gcov += stmts[key] }
	}
	for (p in total) printf "%s %.1f\n", p, 100 * cov[p] / total[p]
	printf "total %.1f\n", 100 * gcov / gtotal
}' "$profile" | sort >"$current"

if [ "${1:-}" = "-update" ]; then
	cp "$current" "$floor"
	echo "coverage_gate: floor rewritten:"
	cat "$floor"
	exit 0
fi

if [ ! -f "$floor" ]; then
	echo "coverage_gate: $floor missing; run scripts/coverage_gate.sh -update" >&2
	exit 1
fi

fail=0
table="| package | floor % | current % | delta |
|---|---:|---:|---:|"
while read -r pkg base; do
	cur=$(awk -v p="$pkg" '$1 == p { print $2 }' "$current")
	if [ -z "$cur" ]; then
		echo "coverage_gate: FAIL $pkg has a floor ($base%) but produced no coverage" >&2
		fail=1
		continue
	fi
	row=$(awk -v p="$pkg" -v c="$cur" -v b="$base" 'BEGIN {
		printf "| %s | %s | %s | %+.1f |", p, b, c, c - b
		exit (c >= b - 1.0) ? 0 : 1
	}') || {
		echo "coverage_gate: FAIL $pkg regressed to $cur% (floor $base%, 1pt grace)" >&2
		fail=1
	}
	table="$table
$row"
done <"$floor"

# Packages the floor does not know about FAIL the gate. A quiet note
# here once let every package added after the floor was written ship
# ungated — the `awk | while` subshell couldn't even have propagated a
# fail flag. The flag is set in this shell, outside the pipeline.
unknown=$(awk 'NR == FNR { seen[$1] = 1; next } !($1 in seen) { print $1, $2 }' "$floor" "$current")
if [ -n "$unknown" ]; then
	echo "$unknown" | while read -r pkg cur; do
		echo "coverage_gate: FAIL $pkg ($cur%) has no floor entry and is not gated" >&2
	done
	echo "coverage_gate: run scripts/coverage_gate.sh -update and commit the new floor" >&2
	fail=1
fi

echo "$table"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
	{
		echo "### Coverage vs floor"
		echo "$table"
	} >>"$GITHUB_STEP_SUMMARY"
fi

if [ "$fail" -ne 0 ]; then
	echo "coverage_gate: gate failed (regression below floor, or package missing a floor entry)" >&2
	exit 1
fi
echo "coverage_gate: all packages at or above floor (1pt grace)"
