package scripts

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// syntheticProfile is a minimal merged coverprofile: package foo fully
// covered (3 statements), package bar untested (4 statements). The
// gate's awk pass turns this into foo 100.0, bar 0.0, total 42.9.
const syntheticProfile = `mode: set
repro/internal/foo/foo.go:1.1,2.2 3 1
repro/internal/bar/bar.go:1.1,2.2 4 0
`

// fullFloor matches syntheticProfile exactly (sorted, as -update
// writes it).
const fullFloor = `repro/internal/bar 0.0
repro/internal/foo 100.0
total 42.9
`

// runGate executes coverage_gate.sh with a synthetic profile and floor,
// bypassing the real `go test ./...` run via COVERAGE_REUSE. It returns
// the combined output and whether the gate passed.
func runGate(t *testing.T, profile, floor string, args ...string) (string, bool) {
	t.Helper()
	dir := t.TempDir()

	profilePath := filepath.Join(dir, "coverage.out")
	if err := os.WriteFile(profilePath, []byte(profile), 0o644); err != nil {
		t.Fatal(err)
	}
	floorPath := filepath.Join(dir, "floor.txt")
	if floor != "" {
		if err := os.WriteFile(floorPath, []byte(floor), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	script, err := filepath.Abs("coverage_gate.sh")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(script, args...)
	cmd.Env = append(os.Environ(),
		"COVERAGE_REUSE=1",
		"COVERPROFILE="+profilePath,
		"COVERAGE_FLOOR="+floorPath,
		"GITHUB_STEP_SUMMARY=", // keep CI summaries out of unit tests
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("running %s: %v\n%s", script, err, out)
		}
	}
	return string(out), err == nil
}

func TestGatePassesWhenFloorMatches(t *testing.T) {
	out, ok := runGate(t, syntheticProfile, fullFloor)
	if !ok {
		t.Fatalf("gate failed on a floor matching the profile:\n%s", out)
	}
	if !strings.Contains(out, "all packages at or above floor") {
		t.Fatalf("missing pass banner:\n%s", out)
	}
}

// TestGateFailsOnUnknownPackage is the regression test for the silent-
// skip bug: a package producing coverage but absent from the floor used
// to print only a note (from inside a pipeline subshell, so even a fail
// flag set there was lost) and the gate passed. It must fail loudly and
// point at -update.
func TestGateFailsOnUnknownPackage(t *testing.T) {
	floorMissingBar := `repro/internal/foo 100.0
total 42.9
`
	out, ok := runGate(t, syntheticProfile, floorMissingBar)
	if ok {
		t.Fatalf("gate passed with repro/internal/bar missing from the floor:\n%s", out)
	}
	if !strings.Contains(out, "repro/internal/bar") || !strings.Contains(out, "no floor entry") {
		t.Fatalf("failure does not name the ungated package:\n%s", out)
	}
	if !strings.Contains(out, "-update") {
		t.Fatalf("failure does not point at the -update fix:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	inflatedFloor := `repro/internal/bar 20.0
repro/internal/foo 100.0
total 42.9
`
	out, ok := runGate(t, syntheticProfile, inflatedFloor)
	if ok {
		t.Fatalf("gate passed though bar regressed 20 points below floor:\n%s", out)
	}
	if !strings.Contains(out, "regressed") {
		t.Fatalf("missing regression diagnostic:\n%s", out)
	}
}

func TestGateToleratesOnePointGrace(t *testing.T) {
	graceFloor := `repro/internal/bar 0.9
repro/internal/foo 100.0
total 42.9
`
	out, ok := runGate(t, syntheticProfile, graceFloor)
	if !ok {
		t.Fatalf("gate failed though bar is within the 1pt grace:\n%s", out)
	}
}

func TestGateFailsWhenFloorPackageVanishes(t *testing.T) {
	floorWithGhost := fullFloor + `repro/internal/ghost 50.0
`
	out, ok := runGate(t, syntheticProfile, floorWithGhost)
	if ok {
		t.Fatalf("gate passed though a floored package produced no coverage:\n%s", out)
	}
	if !strings.Contains(out, "repro/internal/ghost") {
		t.Fatalf("failure does not name the vanished package:\n%s", out)
	}
}

func TestGateFailsWithoutFloorFile(t *testing.T) {
	out, ok := runGate(t, syntheticProfile, "")
	if ok {
		t.Fatalf("gate passed with no floor file:\n%s", out)
	}
	if !strings.Contains(out, "-update") {
		t.Fatalf("missing-floor failure does not point at -update:\n%s", out)
	}
}

func TestUpdateRewritesFloor(t *testing.T) {
	dir := t.TempDir()
	profilePath := filepath.Join(dir, "coverage.out")
	if err := os.WriteFile(profilePath, []byte(syntheticProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	floorPath := filepath.Join(dir, "floor.txt")

	script, err := filepath.Abs("coverage_gate.sh")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(script, "-update")
	cmd.Env = append(os.Environ(),
		"COVERAGE_REUSE=1",
		"COVERPROFILE="+profilePath,
		"COVERAGE_FLOOR="+floorPath,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-update failed: %v\n%s", err, out)
	}
	got, err := os.ReadFile(floorPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != fullFloor {
		t.Fatalf("-update wrote:\n%s\nwant:\n%s", got, fullFloor)
	}
}
