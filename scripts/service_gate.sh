#!/bin/sh
# service_gate.sh — the CI service-gate for pevpmd (docs/SERVICE.md,
# docs/CI.md).
#
# Starts a real pevpmd server on an ephemeral port, then uses pevpmd's
# own client modes against it:
#
#   1. -replay: every committed request in cmd/pevpmd/testdata is
#      POSTed twice sequentially (the second must be a byte-identical
#      response-cache hit) and twice concurrently (byte-identical
#      again), then byte-diffed against the committed golden reply.
#      The response-cache hit counter is asserted non-zero, proving
#      cached requests skip prediction.
#   2. -smoke N: N concurrent mixed requests; duplicates must dedupe
#      to identical bytes; a cache-hit-rate and per-stage latency table
#      lands in GITHUB_STEP_SUMMARY when CI provides one.
#
# Regenerate goldens after a deliberate response-schema change with:
#   scripts/service_gate.sh -update-golden
set -eu

SMOKE_N="${SERVICE_SMOKE_N:-32}"
UPDATE=""
SMOKE_ONLY=""
for arg in "$@"; do
    case "$arg" in
    -update-golden) UPDATE="-update-golden" ;;
    -smoke-only) SMOKE_ONLY=1 ;;
    *)
        echo "service_gate: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bin=$(mktemp -t pevpmd.XXXXXX)
addrfile=$(mktemp -t pevpmd.addr.XXXXXX)
rm -f "$addrfile"

go build -o "$bin" ./cmd/pevpmd

"$bin" -addr 127.0.0.1:0 -addr-file "$addrfile" &
server_pid=$!
cleanup() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    rm -f "$bin" "$addrfile"
}
trap cleanup EXIT INT TERM

# Wait for the listener to publish its address.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "service_gate: server never wrote $addrfile" >&2
        exit 1
    fi
    sleep 0.1
done
target="http://$(cat "$addrfile")"

if [ -z "$SMOKE_ONLY" ]; then
    "$bin" -target "$target" -replay cmd/pevpmd/testdata $UPDATE
fi
"$bin" -target "$target" -replay cmd/pevpmd/testdata -smoke "$SMOKE_N"

echo "service_gate: OK"
