#!/bin/sh
# mpilint regression sweep: every .pvm model shipped in the repository
# is linted with -werror at the default 8 processes.
#
# Shipped example models must lint clean (exit 0). Every fixture under
# internal/mpilint/testdata declares its expected exit code in a
# `# lint-exit: N` header annotation (0 = clean, 1 = findings); a
# missing or malformed annotation fails the sweep, as does an empty
# fixture set — a renamed directory must not silently skip the sweep.
# Exit 2 (usage or parse error) always fails, so a parser regression
# cannot masquerade as "findings reported". The per-file pass/fail
# table is appended to GITHUB_STEP_SUMMARY when CI provides one.
set -eu

cd "$(dirname "$0")/.."
MPILINT="${MPILINT:-go run ./cmd/mpilint}"
fail=0
table=$(mktemp)
trap 'rm -f "$table"' EXIT

note() { # file expected got status
    printf '| %s | %s | %s | %s |\n' "$1" "$2" "$3" "$4" >> "$table"
}

check() {
    f=$1
    want=$2
    set +e
    $MPILINT -werror "$f" > /dev/null 2>&1
    got=$?
    set -e
    if [ "$got" -ne "$want" ]; then
        echo "lint sweep: FAIL $f: exit $got, want $want" >&2
        note "$f" "$want" "$got" FAIL
        fail=1
    else
        echo "lint sweep: ok (exit $got) $f"
        note "$f" "$want" "$got" ok
    fi
}

# expected_exit prints the fixture's annotated exit code, or nothing
# (with a diagnostic on stderr) when the annotation is missing,
# duplicated or not a valid code.
expected_exit() {
    f=$1
    ann=$(sed -n 's/^# lint-exit:[[:space:]]*//p' "$f")
    case "$ann" in
    0|1)
        printf '%s\n' "$ann"
        return 0
        ;;
    "")
        echo "lint sweep: $f: missing '# lint-exit: N' annotation" >&2
        ;;
    2)
        echo "lint sweep: $f: lint-exit 2 is not annotatable (usage/parse errors always fail the sweep)" >&2
        ;;
    *)
        echo "lint sweep: $f: malformed lint-exit annotation '$ann' (want 0 or 1)" >&2
        ;;
    esac
    return 1
}

examples=$(find examples -name '*.pvm' | sort)
fixtures=$(find internal/mpilint/testdata -name '*.pvm' | sort)
if [ -z "$examples" ]; then
    echo "lint sweep: no example .pvm models found under examples/ — fixture set went missing" >&2
    exit 1
fi
if [ -z "$fixtures" ]; then
    echo "lint sweep: no fixtures found under internal/mpilint/testdata/ — fixture set went missing" >&2
    exit 1
fi

# Shipped examples are user-facing models, always expected clean.
for f in $examples; do
    check "$f" 0
done

for f in $fixtures; do
    if ! want=$(expected_exit "$f"); then
        note "$f" "?" "-" "BAD ANNOTATION"
        fail=1
        continue
    fi
    case "$(basename "$f")" in
    clean_*)
        # Filename convention and annotation must agree, so a mislabeled
        # fixture cannot quietly test the wrong thing.
        if [ "$want" -ne 0 ]; then
            echo "lint sweep: $f: clean_* fixture annotated lint-exit $want" >&2
            note "$f" "$want" "-" "BAD ANNOTATION"
            fail=1
            continue
        fi
        ;;
    esac
    check "$f" "$want"
done

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### mpilint sweep"
        echo ""
        echo "| file | expected exit | got | status |"
        echo "| --- | --- | --- | --- |"
        cat "$table"
    } >> "$GITHUB_STEP_SUMMARY"
fi

if [ "$fail" -ne 0 ]; then
    echo "lint sweep: failures above" >&2
    exit 1
fi
echo "lint sweep: all models behaved as expected"
