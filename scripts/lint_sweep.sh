#!/bin/sh
# mpilint regression sweep: every .pvm model shipped in the repository
# is linted with -werror at the default 8 processes. Shipped example
# models and testdata fixtures named clean_* must lint clean (exit 0);
# every other testdata fixture exists to trigger findings and must exit
# exactly 1. Exit 2 (usage or parse error) always fails the sweep, so a
# parser regression cannot masquerade as "findings reported".
set -eu

cd "$(dirname "$0")/.."
MPILINT="${MPILINT:-go run ./cmd/mpilint}"
fail=0

check() {
    f=$1
    want=$2
    set +e
    $MPILINT -werror "$f" > /dev/null 2>&1
    got=$?
    set -e
    if [ "$got" -ne "$want" ]; then
        echo "lint sweep: FAIL $f: exit $got, want $want" >&2
        fail=1
    else
        echo "lint sweep: ok (exit $got) $f"
    fi
}

for f in $(find examples -name '*.pvm' | sort); do
    check "$f" 0
done

for f in $(find internal/mpilint/testdata -name '*.pvm' | sort); do
    case "$(basename "$f")" in
    clean_*) check "$f" 0 ;;
    *) check "$f" 1 ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "lint sweep: failures above" >&2
    exit 1
fi
echo "lint sweep: all models behaved as expected"
